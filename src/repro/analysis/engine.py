"""The rule engine of the determinism lint suite.

Design: a *rule* is a small object with a ``check_module`` hook that receives
one parsed module at a time (path, source, AST) and yields findings, plus an
optional ``finish`` hook that runs after the whole tree has been seen — which
is what lets the ``layer-contract`` rule reason about the cross-module import
and decorator graph.  The engine owns everything rule authors should not have
to repeat: file discovery, parsing, suppression handling and report writing.

Suppressions
------------
A finding is silenced with an inline comment that names the rule *and*
justifies the exception::

    for key in self._storage.keys():  # repro: allow(ordering-hazard): log \
        append order is the replay order

    # repro: allow(layer-contract): composition root, wires the whole stack
    from .membership import GroupMembership

A comment on its own line covers the next line; a trailing comment covers its
own line.  A suppression without a justification (no ``: why`` part) is
itself reported as a ``suppression-syntax`` finding and silences nothing —
allowlisting must leave an audit trail.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: The meta-rule name under which malformed suppressions are reported.
SUPPRESSION_SYNTAX = "suppression-syntax"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*(?P<rules>[A-Za-z0-9_\-, ]+?)\s*\)"
    r"(?P<colon>\s*:\s*(?P<why>.*))?$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file position."""

    path: str
    line: int
    column: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: " \
               f"[{self.rule}] {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One well-formed ``# repro: allow(...)`` comment."""

    path: str
    #: Line carrying the comment.
    line: int
    #: Lines the suppression covers (the comment line, plus the next line
    #: when the comment stands alone).
    covers: Tuple[int, ...]
    rules: Tuple[str, ...]
    justification: str


@dataclass
class ParsedModule:
    """One source file as the rules see it."""

    path: Path
    #: Posix path relative to the lint root (rules scope on this).
    relpath: str
    #: Dotted module name, rooted at the lint root's package name.
    dotted: str
    source: str
    tree: ast.Module
    #: Parent links for every AST node (rules use this to find consumers).
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    def lines(self) -> List[str]:
        return self.source.splitlines()


class Rule:
    """Base class for lint rules."""

    #: Kebab-case rule identifier used in reports and suppressions.
    name: str = "abstract-rule"
    #: One-line description for ``--list-rules`` and the README catalogue.
    description: str = ""

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield findings for one module (called once per file)."""
        return iter(())

    def finish(self) -> Iterator[Finding]:
        """Yield cross-module findings (called once, after every file)."""
        return iter(())


@dataclass
class LintReport:
    """Outcome of one lint run."""

    root: str
    files: int
    rules: Tuple[str, ...]
    #: Active findings, sorted by (path, line, column).
    findings: List[Finding]
    #: Findings silenced by a justified suppression, with the justification.
    suppressed: List[Tuple[Finding, str]]

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


# -- parsing ------------------------------------------------------------------------------


def _attach_parents(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def parse_module(path: Path, root: Path) -> ParsedModule:
    source = path.read_text(encoding="utf-8")
    relpath = path.relative_to(root).as_posix()
    parts = [root.name] + relpath[:-3].split("/")
    if parts[-1] == "__init__":
        parts.pop()
    tree = ast.parse(source, filename=str(path))
    return ParsedModule(path=path, relpath=relpath, dotted=".".join(parts),
                        source=source, tree=tree,
                        parents=_attach_parents(tree))


def find_suppressions(module: ParsedModule
                      ) -> Tuple[List[Suppression], List[Finding]]:
    """Extract suppressions and report malformed ones as findings."""
    suppressions: List[Suppression] = []
    malformed: List[Finding] = []
    for lineno, text in enumerate(module.lines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in
                      match.group("rules").split(",") if part.strip())
        justification = (match.group("why") or "").strip()
        if not rules or not justification:
            malformed.append(Finding(
                path=module.relpath, line=lineno,
                column=match.start() + 1, rule=SUPPRESSION_SYNTAX,
                message="suppression must name its rule(s) and give a "
                        "justification: # repro: allow(rule): why"))
            continue
        standalone = text[:match.start()].strip() == ""
        covers = (lineno, lineno + 1) if standalone else (lineno,)
        suppressions.append(Suppression(
            path=module.relpath, line=lineno, covers=covers, rules=rules,
            justification=justification))
    return suppressions, malformed


# -- running ------------------------------------------------------------------------------


def iter_source_files(root: Path) -> List[Path]:
    """Every ``.py`` file under ``root``, in sorted (stable) order."""
    return sorted(path for path in root.rglob("*.py")
                  if "__pycache__" not in path.parts)


def run_lint(root: Path, rules: Sequence[Rule],
             paths: Optional[Iterable[Path]] = None) -> LintReport:
    """Lint every source file under ``root`` with ``rules``.

    Rules carry per-run state (the layer-contract graph), so callers must
    pass fresh rule instances — see :func:`repro.analysis.rules.default_rules`.
    """
    root = Path(root).resolve()
    files = list(paths) if paths is not None else iter_source_files(root)
    raw_findings: List[Finding] = []
    unsuppressable: List[Finding] = []
    suppressions: List[Suppression] = []
    count = 0
    for path in files:
        count += 1
        try:
            module = parse_module(Path(path), root)
        except SyntaxError as error:
            unsuppressable.append(Finding(
                path=Path(path).relative_to(root).as_posix(),
                line=error.lineno or 1, column=error.offset or 1,
                rule="parse-error", message=f"syntax error: {error.msg}"))
            continue
        found, malformed = find_suppressions(module)
        suppressions.extend(found)
        unsuppressable.extend(malformed)
        for rule in rules:
            raw_findings.extend(rule.check_module(module))
    for rule in rules:
        raw_findings.extend(rule.finish())

    covered: Dict[Tuple[str, int], List[Suppression]] = {}
    for suppression in suppressions:
        for line in suppression.covers:
            covered.setdefault((suppression.path, line), []).append(
                suppression)

    active: List[Finding] = list(unsuppressable)
    silenced: List[Tuple[Finding, str]] = []
    for finding in raw_findings:
        match = None
        for suppression in covered.get((finding.path, finding.line), ()):
            if finding.rule in suppression.rules:
                match = suppression
                break
        if match is None:
            active.append(finding)
        else:
            silenced.append((finding, match.justification))
    active.sort()
    silenced.sort(key=lambda pair: pair[0])
    return LintReport(root=str(root), files=count,
                      rules=tuple(rule.name for rule in rules),
                      findings=active, suppressed=silenced)


# -- report writers -----------------------------------------------------------------------


def render_report(report: LintReport, *, verbose: bool = False) -> str:
    """Human-readable report: one line per finding, then a summary."""
    lines = [finding.format() for finding in report.findings]
    if verbose and report.suppressed:
        lines.append("")
        lines.append("suppressed:")
        for finding, justification in report.suppressed:
            lines.append(f"  {finding.format()}  -- {justification}")
    lines.append("")
    by_rule = report.counts_by_rule()
    detail = ", ".join(f"{rule}={count}"
                       for rule, count in sorted(by_rule.items()))
    lines.append(
        f"{len(report.findings)} finding(s)"
        + (f" ({detail})" if detail else "")
        + f", {len(report.suppressed)} suppressed, "
          f"{report.files} file(s) checked under {report.root}")
    return "\n".join(lines)


def json_report(report: LintReport) -> str:
    """Machine-readable report (the CI artifact)."""
    payload = {
        "schema": "repro.analysis.lint/1",
        "root": report.root,
        "files": report.files,
        "rules": list(report.rules),
        "finding_count": len(report.findings),
        "suppressed_count": len(report.suppressed),
        "counts_by_rule": report.counts_by_rule(),
        "findings": [
            {"path": f.path, "line": f.line, "column": f.column,
             "rule": f.rule, "message": f.message}
            for f in report.findings],
        "suppressed": [
            {"path": f.path, "line": f.line, "column": f.column,
             "rule": f.rule, "message": f.message,
             "justification": justification}
            for f, justification in report.suppressed],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
