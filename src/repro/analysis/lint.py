"""CLI lint gate: ``python -m repro.analysis.lint``.

Exits 0 when the tree is clean, 1 when any finding is active.  The report is
always written (stdout or ``--output``) *before* the exit code is decided, so
CI can upload it as an artifact even on failure.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import render_report, run_lint
from .rules import default_rules


def _default_root() -> Path:
    import repro
    return Path(repro.__file__).resolve().parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AST lint gate for the repo's determinism contracts")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="package root to lint (default: the installed repro package)")
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (json is the CI artifact schema)")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the report to this file instead of stdout")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all)")
    parser.add_argument(
        "--strict-layers", action="store_true",
        help="also fail on skip-layer dependencies in the layer contract")
    parser.add_argument(
        "--verbose", action="store_true",
        help="include suppressed findings in the human report")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    rules = default_rules(strict_layers=args.strict_layers)
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name}: {rule.description}")
        return 0
    if args.rules is not None:
        wanted = {name.strip() for name in args.rules.split(",")
                  if name.strip()}
        unknown = wanted - {rule.name for rule in rules}
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.name in wanted]

    root = args.root if args.root is not None else _default_root()
    report = run_lint(root, rules)

    if args.format == "json":
        from .engine import json_report
        text = json_report(report)
    else:
        text = render_report(report, verbose=args.verbose)
    if args.output is not None:
        args.output.write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    if not report.ok and args.output is not None:
        # Keep the failure visible even when the report went to a file.
        print(f"lint: {len(report.findings)} finding(s); "
              f"see {args.output}", file=sys.stderr)
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
