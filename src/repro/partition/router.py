"""Routing transaction programs against an epoch-versioned ownership map.

The :class:`TransactionRouter` classifies every
:class:`~repro.db.operations.TransactionProgram` by the set of replica
groups its operations touch — against an immutable
:class:`~repro.partition.routing.RoutingSnapshot`, so one transaction sees
one consistent ownership map even while shards split, merge or migrate
underneath it.  Single-partition programs take the fast path — they are
submitted directly to the owning replica group and enjoy exactly the latency
the paper measured for one group.  Multi-partition programs are split into
per-partition *branches* and handed to the
:class:`~repro.partition.coordinator.CrossPartitionCoordinator`.

When ownership moves *under* a routed transaction (a migration bumped the
epoch between classification and execution), the stale routing is detected —
synchronously at submission for fenced ranges, or at 2PC vote collection via
:meth:`snapshot_is_current` — and surfaces as
:class:`~repro.partition.routing.WrongEpochError` /
``xpartition-wrong-epoch``.  The submission path retries against a fresh
snapshot; :attr:`wrong_epoch_retries` counts those rounds.

The router accepts any object speaking the partitioner protocol
(``partition_count`` / ``partition_of`` / ``partitions_of`` /
``partition_keys``) — a :class:`~repro.partition.routing.RoutingTable`,
one of its snapshots, or a frozen custom mapping that never changes epoch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..db.operations import TransactionProgram
from ..obs.metrics import MetricsRegistry
from .routing import snapshot_of


class TransactionRouter:
    """Classify and split programs by the groups their keys live on."""

    def __init__(self, routing,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        #: The live ownership map: a RoutingTable, or any frozen object
        #: speaking the partitioner protocol (its "snapshot" is itself and
        #: its epoch is forever 0).
        self.routing = routing
        # Routing statistics live on the metrics registry (the cluster's when
        # embedded, a private one when the router is used standalone); the
        # properties below keep the historical attribute API.
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._single = metrics.counter("router_classified",
                                       component="router", kind="single")
        self._cross = metrics.counter("router_classified",
                                      component="router", kind="cross")
        self._retries = metrics.counter("router_wrong_epoch_retries",
                                        component="router")

    @property
    def single_partition_count(self) -> int:
        """Programs classified as single-partition."""
        return self._single.value

    @property
    def cross_partition_count(self) -> int:
        """Programs classified as cross-partition."""
        return self._cross.value

    @property
    def wrong_epoch_retries(self) -> int:
        """Submissions re-routed after ownership moved under them (fenced
        range at submit, or a wrong-epoch 2PC abort)."""
        return self._retries.value

    @wrong_epoch_retries.setter
    def wrong_epoch_retries(self, value: int) -> None:
        # The retry loop in ``cluster.submit_retrying`` increments this
        # attribute directly; route the write to the counter.
        self._retries.value = value

    @property
    def partitioner(self):
        """Deprecated alias for :attr:`routing` (the old attribute name)."""
        return self.routing

    def snapshot(self):
        """An immutable view of the current ownership map."""
        return snapshot_of(self.routing)

    # -- classification ---------------------------------------------------------------
    def partitions_of(self, program: TransactionProgram,
                      snapshot=None, keys=None) -> List[int]:
        """Sorted ids of every group touched by ``program``.

        ``keys`` lets a caller that already materialised the program's key
        list (the cluster submit path does, for the fence check) avoid a
        second pass over the operations.
        """
        view = snapshot if snapshot is not None else self.snapshot()
        return view.partitions_of(
            keys if keys is not None else
            (operation.key for operation in program.operations))

    def is_single_partition(self, program: TransactionProgram,
                            snapshot=None) -> bool:
        """True if every operation of ``program`` lives on one group."""
        return len(self.partitions_of(program, snapshot=snapshot)) == 1

    def classify(self, program: TransactionProgram,
                 snapshot=None, keys=None) -> List[int]:
        """Like :meth:`partitions_of`, but also updates the routing counters."""
        partitions = self.partitions_of(program, snapshot=snapshot, keys=keys)
        if len(partitions) == 1:
            self._single.inc()
        else:
            self._cross.inc()
        return partitions

    # -- epoch validation ---------------------------------------------------------------
    def snapshot_is_current(self, keys: Iterable[str], snapshot) -> bool:
        """True if ``snapshot`` still routes every key of ``keys`` correctly.

        Cheap when the epoch has not moved; after a bump, ownership is
        compared key by key (a split or an unrelated migration bumps the
        epoch without invalidating this transaction's routing).
        """
        current = self.snapshot()
        if getattr(current, "epoch", 0) == getattr(snapshot, "epoch", 0):
            return True
        return all(current.partition_of(key) == snapshot.partition_of(key)
                   for key in keys)

    # -- splitting -----------------------------------------------------------------------
    def split(self, program: TransactionProgram,
              snapshot=None) -> Dict[int, TransactionProgram]:
        """Split ``program`` into one branch program per touched group.

        Each branch keeps its operations in original program order, so the
        per-partition read/write semantics are unchanged.  Branch programs get
        fresh program ids (they become independent transactions on their
        partition); the originating client name is preserved.
        """
        view = snapshot if snapshot is not None else self.snapshot()
        by_partition: Dict[int, List] = {}
        for operation in program.operations:
            partition_id = view.partition_of(operation.key)
            by_partition.setdefault(partition_id, []).append(operation)
        return {
            partition_id: TransactionProgram(operations=tuple(operations),
                                             client=program.client)
            for partition_id, operations in sorted(by_partition.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<TransactionRouter single={self.single_partition_count} "
                f"cross={self.cross_partition_count} "
                f"retries={self.wrong_epoch_retries}>")
