"""Routing transaction programs to partitions.

The :class:`TransactionRouter` classifies every
:class:`~repro.db.operations.TransactionProgram` by the set of partitions its
operations touch.  Single-partition programs take the fast path — they are
submitted directly to the owning replica group and enjoy exactly the latency
the paper measured for one group.  Multi-partition programs are split into
per-partition *branches* and handed to the
:class:`~repro.partition.coordinator.CrossPartitionCoordinator`.
"""

from __future__ import annotations

from typing import Dict, List

from ..db.operations import TransactionProgram
from .partitioner import Partitioner


class TransactionRouter:
    """Classify and split programs by the partitions their keys live on."""

    def __init__(self, partitioner: Partitioner) -> None:
        self.partitioner = partitioner
        #: Statistics: how many programs were classified each way.
        self.single_partition_count = 0
        self.cross_partition_count = 0

    # -- classification ---------------------------------------------------------------
    def partitions_of(self, program: TransactionProgram) -> List[int]:
        """Sorted ids of every partition touched by ``program``."""
        return self.partitioner.partitions_of(
            operation.key for operation in program.operations)

    def is_single_partition(self, program: TransactionProgram) -> bool:
        """True if every operation of ``program`` lives on one partition."""
        return len(self.partitions_of(program)) == 1

    def classify(self, program: TransactionProgram) -> List[int]:
        """Like :meth:`partitions_of`, but also updates the routing counters."""
        partitions = self.partitions_of(program)
        if len(partitions) == 1:
            self.single_partition_count += 1
        else:
            self.cross_partition_count += 1
        return partitions

    # -- splitting -----------------------------------------------------------------------
    def split(self, program: TransactionProgram
              ) -> Dict[int, TransactionProgram]:
        """Split ``program`` into one branch program per touched partition.

        Each branch keeps its operations in original program order, so the
        per-partition read/write semantics are unchanged.  Branch programs get
        fresh program ids (they become independent transactions on their
        partition); the originating client name is preserved.
        """
        by_partition: Dict[int, List] = {}
        for operation in program.operations:
            partition_id = self.partitioner.partition_of(operation.key)
            by_partition.setdefault(partition_id, []).append(operation)
        return {
            partition_id: TransactionProgram(operations=tuple(operations),
                                             client=program.client)
            for partition_id, operations in sorted(by_partition.items())
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<TransactionRouter single={self.single_partition_count} "
                f"cross={self.cross_partition_count}>")
