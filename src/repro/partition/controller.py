"""Autobalance: a closed-loop controller driving ``cluster.rebalance()``.

PR 2 made shard rebalancing *possible* online; this module makes it
*automatic*.  A :class:`RebalanceController` is a simulated process that
watches **windowed** per-shard load derived from the routing table's access
counters and triggers :meth:`~repro.partition.cluster.PartitionedCluster.
rebalance` when one shard's share of the recent window exceeds a threshold —
no operator in the loop.

The control problem is damping, not detection: a naive "move the hottest
shard every window" controller chases noise and ping-pongs ranges between
groups (each move pays a copy, a fence, and a round of wrong-epoch retries).
Three mechanisms keep it stable:

* **Windowed load.**  Every window the controller reads the per-shard totals
  and then calls :meth:`~repro.partition.routing.RoutingTable.roll_window`,
  decaying the counters; the signal it acts on is an exponentially weighted
  view of roughly the last ``1 / (1 - decay_factor)`` windows, so
  yesterday's hot set cannot trigger today's move.
* **Cooldown.**  After triggering a rebalance the controller sits out
  ``cooldown_windows`` windows, letting the migration finish and the load
  signal re-form around the new map before judging it.
* **Hysteresis.**  A key range that was moved within the last
  ``hysteresis_windows`` windows is not moved again, even if it is the
  hottest — an alternating hotspot oscillating faster than the hysteresis
  horizon is deliberately left alone rather than chased.

Every decision is counted in :class:`ControllerStats` (exposed through
:class:`~repro.partition.stats.PartitionedRunStatistics`), so experiments
can see not just what the controller did but what it declined to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from .routing import KeyRange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..sim.process import Process
    from .cluster import PartitionedCluster


@dataclass
class ControllerStats:
    """Every decision the controller took (or declined), for experiments."""

    #: Windows observed (one evaluation each).
    windows_observed: int = 0
    #: Rebalances actually triggered.
    rebalances_triggered: int = 0
    #: Windows skipped because too little traffic was observed or no shard
    #: crossed the share threshold.
    skipped_below_threshold: int = 0
    #: Windows skipped inside the post-trigger cooldown.
    skipped_cooldown: int = 0
    #: Triggers suppressed because the hot range moved recently.
    skipped_hysteresis: int = 0
    #: Windows skipped because a migration was still in flight.
    skipped_migration_active: int = 0
    #: Triggers that failed synchronously (e.g. no legal destination).
    trigger_failures: int = 0
    #: (window index, migrated range) of every triggered move.
    moves: List[Tuple[int, KeyRange]] = field(default_factory=list)


class RebalanceController:
    """Watches windowed shard load and rebalances hot shards automatically.

    Attach one to a running :class:`~repro.partition.cluster.
    PartitionedCluster` and :meth:`start` it::

        controller = RebalanceController(cluster, window_ms=500.0,
                                         share_threshold=0.45)
        controller.start()
        cluster.run(until=20_000)

    Parameters
    ----------
    window_ms:
        Length of one observation window (one evaluation per window).
    share_threshold:
        Trigger when the hottest shard carries more than this fraction of
        the window's observed accesses.
    cooldown_windows:
        Windows to sit out after a trigger before evaluating again.
    hysteresis_windows:
        Don't re-move a range that was moved within this many windows.
    min_window_accesses:
        Ignore windows with fewer observed accesses than this — a share
        computed over a handful of accesses is noise, not load.
    decay_factor:
        Applied to the routing table's counters at every window roll.
    copy_concurrency / copy_budget_tps / copy_min_tps:
        Passed through to the migration's overlapped, throttled copy phase
        (None = the cluster's defaults).
    roll_windows:
        Roll the routing table's decay window after each evaluation (the
        default).  Set False when the table decays passively on its own
        ``decay_interval_ms`` schedule, so the counters are not decayed
        twice.
    """

    def __init__(self, cluster: "PartitionedCluster",
                 window_ms: float = 500.0,
                 share_threshold: float = 0.45,
                 cooldown_windows: int = 2,
                 hysteresis_windows: int = 4,
                 min_window_accesses: int = 32,
                 decay_factor: float = 0.5,
                 copy_concurrency: Optional[int] = None,
                 copy_budget_tps: Optional[float] = None,
                 copy_min_tps: Optional[float] = None,
                 roll_windows: bool = True) -> None:
        if window_ms <= 0:
            raise ValueError(f"window must be positive, got {window_ms!r}")
        if not 0.0 < share_threshold < 1.0:
            raise ValueError(
                f"share threshold must be in (0, 1), got {share_threshold!r}")
        if not 0.0 < decay_factor < 1.0:
            raise ValueError(
                f"decay factor must be in (0, 1), got {decay_factor!r}")
        self.cluster = cluster
        self.sim = cluster.sim
        self.window_ms = window_ms
        self.share_threshold = share_threshold
        self.cooldown_windows = cooldown_windows
        self.hysteresis_windows = hysteresis_windows
        self.min_window_accesses = min_window_accesses
        self.copy_concurrency = copy_concurrency
        self.copy_budget_tps = copy_budget_tps
        self.copy_min_tps = copy_min_tps
        self.roll_windows = roll_windows
        if roll_windows:
            cluster.routing.decay_factor = decay_factor
        self.stats = ControllerStats()
        self._window = 0
        self._last_trigger_window: Optional[int] = None
        self._process: Optional["Process"] = None
        cluster.controller = self

    # -- lifecycle ----------------------------------------------------------------------
    def start(self) -> "Process":
        """Spawn the controller loop (idempotent)."""
        if self._process is None or not self._process.is_alive:
            self._process = self.sim.spawn(self._loop(),
                                           name="controller.autobalance")
        return self._process

    def stop(self) -> None:
        """Stop the controller loop (a triggered migration still finishes)."""
        if self._process is not None and self._process.is_alive:
            self._process.kill()
            self._process = None

    def _loop(self):
        while True:
            yield self.sim.timeout(self.window_ms)
            self._window += 1
            self.stats.windows_observed += 1
            self._evaluate()
            if self.roll_windows:
                self.cluster.routing.roll_window()

    # -- one control decision -----------------------------------------------------------
    def _in_cooldown(self) -> bool:
        return (self._last_trigger_window is not None and
                self._window - self._last_trigger_window <=
                self.cooldown_windows)

    def _recently_moved(self, key_range: KeyRange) -> bool:
        for window, moved in self.stats.moves:
            if self._window - window > self.hysteresis_windows:
                continue
            if moved.lo < key_range.hi and key_range.lo < moved.hi:
                return True
        return False

    def _skip(self, obs, reason: str) -> None:
        """Mark one declined window on the span tracer, if attached."""
        if obs is not None:
            obs.instant("controller.skip", track="controller",
                        labels={"window": self._window, "reason": reason})

    def _evaluate(self) -> None:
        cluster = self.cluster
        obs = self.sim.obs
        if cluster.partition_count < 2:
            self.stats.skipped_below_threshold += 1
            self._skip(obs, "single-partition")
            return
        if cluster.migration_active:
            self.stats.skipped_migration_active += 1
            self._skip(obs, "migration-active")
            return
        if self._in_cooldown():
            self.stats.skipped_cooldown += 1
            self._skip(obs, "cooldown")
            return
        totals = cluster.routing.shard_accesses()
        observed = sum(totals)
        if observed < self.min_window_accesses:
            self.stats.skipped_below_threshold += 1
            self._skip(obs, "below-threshold")
            return
        hottest = max(range(len(totals)), key=totals.__getitem__)
        share = totals[hottest] / observed
        if share <= self.share_threshold:
            self.stats.skipped_below_threshold += 1
            self._skip(obs, "below-threshold")
            return
        hot_range = cluster.routing.range_of(hottest)
        if self._recently_moved(hot_range):
            self.stats.skipped_hysteresis += 1
            self._skip(obs, "hysteresis")
            return
        try:
            cluster.rebalance(shard=hottest,
                              copy_concurrency=self.copy_concurrency,
                              copy_budget_tps=self.copy_budget_tps,
                              copy_min_tps=self.copy_min_tps)
        except (ValueError, RuntimeError):
            # No legal destination / a migration raced us; try again later.
            self.stats.trigger_failures += 1
            self._skip(obs, "trigger-failed")
            return
        self.stats.rebalances_triggered += 1
        self._last_trigger_window = self._window
        moved = cluster.migration_reports[-1].key_range
        self.stats.moves.append((self._window, moved))
        if obs is not None:
            obs.instant("controller.rebalance", track="controller",
                        labels={"window": self._window, "shard": hottest,
                                "share": round(share, 4),
                                "range": repr(moved)})

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<RebalanceController window={self.window_ms}ms "
                f"threshold={self.share_threshold:.0%} "
                f"triggered={self.stats.rebalances_triggered}>")
