"""Keyspace partitioning strategies — **compatibility shim**.

.. deprecated::
    The static :class:`Partitioner` hierarchy is superseded by the
    epoch-versioned :class:`~repro.partition.routing.RoutingTable`, which
    supports online shard split/merge and live key migration.  The classes
    here remain as thin shims over an epoch-0 routing snapshot so existing
    call sites (and the deterministic seed mappings they rely on) keep
    working bit-for-bit; new code should build a
    :class:`~repro.partition.routing.RoutingTable` directly.

A :class:`Partitioner` maps every item key to the id of the replica group
(partition) that owns it:

* :class:`HashPartitioner` — a stable CRC32 hash of the key modulo the
  partition count;
* :class:`RangePartitioner` — contiguous index ranges over the conventional
  ``item-<i>`` keys.

Both are deterministic functions of the key alone (no salted ``hash()``), so
the mapping is identical across runs and across processes — a requirement
for the reproducibility discipline of the simulation study.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .routing import STRATEGIES, RoutingTable

__all__ = ["Partitioner", "HashPartitioner", "RangePartitioner",
           "make_partitioner", "STRATEGIES"]


class Partitioner:
    """Base class: a deterministic, *frozen* key -> partition-id mapping.

    Deprecated in favour of :class:`~repro.partition.routing.RoutingTable`;
    kept as the stable protocol (``partition_count`` / ``partition_of`` /
    ``partitions_of`` / ``partition_keys``) that routing snapshots also
    implement.
    """

    #: The epoch-0 routing table backing this partitioner (None for direct
    #: subclasses that override :meth:`partition_of` themselves).
    table: RoutingTable = None

    def __init__(self, partition_count: int) -> None:
        if partition_count < 1:
            raise ValueError(
                f"partition count must be >= 1, got {partition_count!r}")
        self.partition_count = partition_count

    def partition_of(self, key: str) -> int:
        """The id (``0 .. partition_count-1``) of the partition owning ``key``."""
        raise NotImplementedError

    def partitions_of(self, keys: Iterable[str]) -> List[int]:
        """Sorted ids of all partitions touched by ``keys``."""
        return sorted({self.partition_of(key) for key in keys})

    def partition_keys(self, keys: Iterable[str]) -> Dict[int, List[str]]:
        """Group ``keys`` by owning partition, preserving order within each."""
        grouped: Dict[int, List[str]] = {}
        for key in keys:
            grouped.setdefault(self.partition_of(key), []).append(key)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} partitions={self.partition_count}>"


class HashPartitioner(Partitioner):
    """Stable hash partitioning: ``crc32(key) % partition_count``.

    Shim over an epoch-0 ``"hash"`` routing table (one position slot per
    group), preserving the historical placement bit-for-bit.
    """

    def __init__(self, partition_count: int) -> None:
        super().__init__(partition_count)
        self.table = RoutingTable.from_strategy("hash", partition_count)

    def partition_of(self, key: str) -> int:
        return self.table.partition_of(key)


class RangePartitioner(Partitioner):
    """Contiguous ranges of the ``item-<i>`` keyspace.

    Item index ``i`` of an ``item_count``-item database belongs to partition
    ``i * partition_count // item_count``; keys that do not follow the
    ``<anything>-<integer>`` convention fall back to hash placement so the
    partitioner stays total.  Shim over an epoch-0 ``"range"`` routing
    table whose shard boundaries reproduce exactly that formula.
    """

    def __init__(self, partition_count: int, item_count: int) -> None:
        super().__init__(partition_count)
        self.item_count = item_count
        self.table = RoutingTable.from_strategy("range", partition_count,
                                                item_count)

    def partition_of(self, key: str) -> int:
        return self.table.partition_of(key)


def make_partitioner(strategy: str, partition_count: int,
                     item_count: int = 0) -> Partitioner:
    """Build the partitioner named ``strategy`` (``"hash"`` or ``"range"``).

    Deprecated: new code should call
    :meth:`~repro.partition.routing.RoutingTable.from_strategy`.
    """
    if strategy == "hash":
        return HashPartitioner(partition_count)
    if strategy == "range":
        return RangePartitioner(partition_count, item_count)
    raise ValueError(
        f"unknown partitioning strategy {strategy!r}; expected one of "
        f"{STRATEGIES}")
