"""Keyspace partitioning strategies.

A :class:`Partitioner` maps every item key to the id of the replica group
(partition) that owns it.  Two strategies are provided:

* :class:`HashPartitioner` — a stable CRC32 hash of the key modulo the
  partition count.  Spreads any keyspace evenly; adjacent items land on
  different partitions, so range-local workloads gain nothing.
* :class:`RangePartitioner` — contiguous index ranges over the conventional
  ``item-<i>`` keys.  Keeps neighbouring items co-located, which is what a
  range-scan-friendly deployment would choose.

Both are deterministic functions of the key alone (no salted ``hash()``), so
the mapping is identical across runs and across processes — a requirement for
the reproducibility discipline of the simulation study.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List


class Partitioner:
    """Base class: a deterministic key -> partition-id mapping."""

    def __init__(self, partition_count: int) -> None:
        if partition_count < 1:
            raise ValueError(
                f"partition count must be >= 1, got {partition_count!r}")
        self.partition_count = partition_count

    def partition_of(self, key: str) -> int:
        """The id (``0 .. partition_count-1``) of the partition owning ``key``."""
        raise NotImplementedError

    def partitions_of(self, keys: Iterable[str]) -> List[int]:
        """Sorted ids of all partitions touched by ``keys``."""
        return sorted({self.partition_of(key) for key in keys})

    def partition_keys(self, keys: Iterable[str]) -> Dict[int, List[str]]:
        """Group ``keys`` by owning partition, preserving order within each."""
        grouped: Dict[int, List[str]] = {}
        for key in keys:
            grouped.setdefault(self.partition_of(key), []).append(key)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} partitions={self.partition_count}>"


class HashPartitioner(Partitioner):
    """Stable hash partitioning: ``crc32(key) % partition_count``."""

    def partition_of(self, key: str) -> int:
        return zlib.crc32(key.encode("utf-8")) % self.partition_count


class RangePartitioner(Partitioner):
    """Contiguous ranges of the ``item-<i>`` keyspace.

    Item index ``i`` of an ``item_count``-item database belongs to partition
    ``i * partition_count // item_count``; keys that do not follow the
    ``<anything>-<integer>`` convention fall back to hash placement so the
    partitioner stays total.
    """

    def __init__(self, partition_count: int, item_count: int) -> None:
        super().__init__(partition_count)
        if item_count < partition_count:
            raise ValueError(
                f"cannot range-partition {item_count} items into "
                f"{partition_count} partitions")
        self.item_count = item_count

    def partition_of(self, key: str) -> int:
        _prefix, _sep, suffix = key.rpartition("-")
        if suffix.isdigit():
            index = min(int(suffix), self.item_count - 1)
            return index * self.partition_count // self.item_count
        return zlib.crc32(key.encode("utf-8")) % self.partition_count


#: Strategy names accepted by :func:`make_partitioner`.
STRATEGIES = ("hash", "range")


def make_partitioner(strategy: str, partition_count: int,
                     item_count: int = 0) -> Partitioner:
    """Build the partitioner named ``strategy`` (``"hash"`` or ``"range"``)."""
    if strategy == "hash":
        return HashPartitioner(partition_count)
    if strategy == "range":
        return RangePartitioner(partition_count, item_count)
    raise ValueError(
        f"unknown partitioning strategy {strategy!r}; expected one of "
        f"{STRATEGIES}")
