"""Removed: the static hash/range partitioner shims.

The :class:`Partitioner` hierarchy that used to live here (``Partitioner``,
``HashPartitioner``, ``RangePartitioner``, ``make_partitioner``) was a
compatibility layer over epoch-0 routing snapshots.  It is gone; the
epoch-versioned :class:`~repro.partition.routing.RoutingTable` is the one
ownership map, and it reproduces the seed placements bit-for-bit::

    from repro.partition import RoutingTable

    table = RoutingTable.from_strategy("hash", group_count)
    table = RoutingTable.from_strategy("range", group_count, item_count)

This module raises on import for one release so stale callers get a
pointer instead of an AttributeError deep inside their run.
"""

raise ImportError(
    "repro.partition.partitioner was removed: the static Partitioner shims "
    "are superseded by repro.partition.routing.RoutingTable, which "
    "reproduces the same placements.  Build the ownership map with "
    "RoutingTable.from_strategy('hash', group_count) or "
    "RoutingTable.from_strategy('range', group_count, item_count).")
