"""A partitioned cluster whose replica groups run as parallel shards.

The serial :class:`~repro.partition.cluster.PartitionedCluster` keeps every
replica group on one shared simulator — coordinator and migration driver call
straight into the other groups' objects, which is exactly what caps the whole
experiment at one core.  This module re-cuts the model along the shard
boundary so each replica group is a self-contained world (its own
:class:`~repro.sim.engine.Simulator`, its own LAN, its own
:class:`~repro.replication.cluster.ReplicatedDatabaseCluster` and workload)
and **all** cross-shard interaction travels as
:class:`~repro.sim.parallel.CrossShardMessage` values:

* **2PC traffic** — a coordinator shard terminates its local branch through
  its own replication technique, then exchanges ``prepare`` / ``vote`` /
  ``decision`` legs with the participant shard, each leg costing the
  cross-shard latency.  The participant terminates its branch through *its*
  technique between prepare and vote, so both branches pay the full local
  replication cost and the client sees the 2PC round trips on top.
* **Migration traffic** — a scripted warm copy streams chunked item
  snapshots to the destination shard, fences, waits for the fence ack and
  then broadcasts the epoch bump to every shard (the routing-table install).
* **Failure injection** — crash/recover schedules and migration-phase
  failpoints fire inside the owning shard's world, exactly as in the serial
  failure matrices.

Because every cross-shard leg costs at least ``cross_shard_latency``, that
latency is a valid conservative lookahead for
:func:`repro.sim.parallel.run_sharded` — no shard can ever receive a message
in its simulated past.  Everything that could leak host-process state into
the simulation is pinned per shard: the random streams derive from a
per-shard seed, and transaction program identifiers are re-assigned from a
shard-local counter (the module-global counter in
:mod:`repro.db.operations` would otherwise make transaction ids depend on
how many shards share a worker process).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..db.operations import Operation, OperationType, TransactionProgram
from ..replication.cluster import ReplicatedDatabaseCluster
from ..replication.results import RunStatistics, TransactionResult
from ..sim.engine import Simulator
from ..sim.parallel import (CrossShardMessage, ParallelRunReport, ShardSpec,
                            run_sharded)
from ..workload.params import SimulationParameters
from .stats import PartitionedRunStatistics

#: Multiplier deriving a shard's simulator seed from the scenario seed.
#: Prime and large so neighbouring scenario seeds never collide across
#: neighbouring shard ids.
_SHARD_SEED_STRIDE = 1_000_003

#: Migration phases at which a failpoint may crash a server (mirrors the
#: serial cluster's failpoint discipline).
FAILPOINT_PHASES = ("migration.copy-start", "migration.copy-chunk",
                    "migration.fence", "migration.epoch-logged")


# -- scenario description (picklable, crosses the process boundary) -----------------------


@dataclass(frozen=True)
class MigrationPlan:
    """One scripted key-range migration between two shards."""

    start_ms: float
    source_shard: int
    dest_shard: int
    key_count: int
    chunk_size: int = 32
    #: Simulated milliseconds of copy work per chunk on the source.
    chunk_service_ms: float = 2.0
    #: Optional ``(phase, server_index, recover_after_ms)`` — crash that
    #: server of the source shard when ``phase`` first fires; ``None`` as the
    #: recovery delay leaves the server down.
    failpoint: Optional[Tuple[str, int, Optional[float]]] = None


@dataclass(frozen=True)
class CrashPlan:
    """One scripted server crash (and optional recovery) inside a shard."""

    at_ms: float
    shard: int
    server_index: int
    recover_at_ms: Optional[float] = None


@dataclass(frozen=True)
class ShardScenario:
    """Everything a worker process needs to rebuild one shard's world."""

    technique: str = "group-safe"
    shard_count: int = 4
    seed: int = 1
    items_per_shard: int = 200
    servers_per_shard: int = 3
    load_tps_per_shard: float = 40.0
    #: Probability that an arrival becomes a cross-shard 2PC transaction.
    cross_shard_probability: float = 0.1
    #: One-way latency of every cross-shard leg (ms) — also the conservative
    #: lookahead, so it must stay the *minimum* cross-shard delay.
    cross_shard_latency: float = 4.0
    #: Operations of the participant branch of a cross-shard transaction.
    remote_branch_ops: int = 2
    duration_ms: float = 2_000.0
    migrations: Tuple[MigrationPlan, ...] = ()
    crashes: Tuple[CrashPlan, ...] = ()
    #: Record golden event traces and return their digests (slower).
    trace: bool = False
    #: Attach span tracers and return per-shard Chrome trace payloads.
    observe: bool = False
    #: Total-order broadcast engine each shard's replica group runs on
    #: (registry name, see :mod:`repro.gcs.engines`).
    broadcast_engine: str = "fixed-sequencer"

    @property
    def lookahead(self) -> float:
        """The conservative lookahead of this scenario."""
        return self.cross_shard_latency


# -- per-shard results (picklable, travel back to the coordinator) ------------------------


@dataclass
class CrossShardOutcome:
    """Client-visible outcome of one cross-shard 2PC transaction."""

    txn_id: str
    committed: bool
    response_time: float
    abort_reason: Optional[str]
    coordinator_shard: int
    participant_shard: int


@dataclass
class ShardMigrationReport:
    """One scripted migration as observed on the source shard."""

    migration_id: str
    source_shard: int
    dest_shard: int
    key_count: int
    chunks: int
    started_ms: float
    fenced_ms: Optional[float] = None
    completed_ms: Optional[float] = None
    completed: bool = False
    epoch: Optional[int] = None


@dataclass
class ShardCrashRecord:
    """One injected crash or recovery, in the owning shard's time."""

    at_ms: float
    shard: int
    server: str
    kind: str


@dataclass
class ShardResult:
    """Everything one shard reports back after the run."""

    shard_id: int
    events_scheduled: int
    final_time_ms: float
    single_results: List[TransactionResult] = field(default_factory=list)
    cross_results: List[CrossShardOutcome] = field(default_factory=list)
    #: Locally committed transactions summed over the shard's databases.
    commits_on_shard: int = 0
    #: Participant branches this shard terminated for remote coordinators.
    participant_branches: int = 0
    epoch_commits: Dict[int, int] = field(default_factory=dict)
    final_epoch: int = 0
    migrations: List[ShardMigrationReport] = field(default_factory=list)
    crash_events: List[ShardCrashRecord] = field(default_factory=list)
    failpoints_fired: Dict[str, int] = field(default_factory=dict)
    #: sha256 over the golden event trace (``scenario.trace`` runs only).
    digest: Optional[str] = None
    trace_length: int = 0
    #: Chrome trace payload (``scenario.observe`` runs only).
    chrome: Optional[Dict[str, Any]] = None


# -- the shard world ----------------------------------------------------------------------


class ShardWorld:
    """One replica group running as a self-contained shard.

    Implements the shard protocol of :func:`repro.sim.parallel.run_sharded`:
    ``peek`` / ``run_before`` / ``inject`` / ``drain_outbox`` / ``finish``.
    """

    def __init__(self, shard_id: int, scenario: ShardScenario) -> None:
        self.shard_id = shard_id
        self.scenario = scenario
        self.sim = Simulator(
            seed=scenario.seed * _SHARD_SEED_STRIDE + shard_id)
        self._trace = self.sim.enable_trace() if scenario.trace else None
        if scenario.observe:
            from ..obs.tracer import Observability
            Observability(self.sim)
        params = SimulationParameters.small(
            server_count=scenario.servers_per_shard,
            item_count=scenario.items_per_shard).with_overrides(
                broadcast_engine=scenario.broadcast_engine)
        self.cluster = ReplicatedDatabaseCluster(
            scenario.technique, params=params, sim=self.sim,
            name_prefix=f"p{shard_id}.")
        self.cluster.start()
        self._servers = self.cluster.server_names()

        self._outbox: List[CrossShardMessage] = []
        self._send_seq = 0
        self._program_seq = 0
        self._xact_seq = 0
        self._next_client = 0
        self.routing_epoch = 0

        self.single_results: List[TransactionResult] = []
        self.cross_results: List[CrossShardOutcome] = []
        self.epoch_commits: Dict[int, int] = {}
        self.migration_reports: List[ShardMigrationReport] = []
        self.crash_events: List[ShardCrashRecord] = []
        self.failpoints_fired: Dict[str, int] = {}
        self.participant_branches = 0
        self._pending_votes: Dict[str, Any] = {}
        self._fence_acks: Dict[str, Any] = {}
        self._armed_failpoints: Dict[str, Tuple[int, Optional[float]]] = {}

        self._xshard_stream = self.sim.random.stream("parallel.xshard")
        self._target_stream = self.sim.random.stream("parallel.xshard.target")
        self._remote_op_stream = self.sim.random.stream("parallel.remote.ops")

        for plan in scenario.crashes:
            if plan.shard == shard_id:
                self._schedule_crash(plan)
        for plan in scenario.migrations:
            if plan.source_shard == shard_id:
                self.sim.call_at(plan.start_ms, self._start_migration(plan))
        if scenario.load_tps_per_shard > 0:
            self.sim.spawn(self._arrivals(),
                           name=f"shard{shard_id}.arrivals")

    # -- shard protocol -------------------------------------------------------------------
    def peek(self) -> float:
        return self.sim.peek()

    def run_before(self, bound: float) -> None:
        self.sim.run_before(bound)

    def inject(self, message: CrossShardMessage) -> None:
        self.sim.call_at(message.deliver_at, self._dispatch(message))

    def drain_outbox(self) -> List[CrossShardMessage]:
        drained = self._outbox
        self._outbox = []
        return drained

    def finish(self, until: float) -> ShardResult:
        result = ShardResult(
            shard_id=self.shard_id,
            events_scheduled=self.sim.scheduled_events,
            final_time_ms=until,
            single_results=self.single_results,
            cross_results=self.cross_results,
            commits_on_shard=sum(
                database.committed_count
                # repro: allow(ordering-hazard): integer sum, exact at any order
                for database in self.cluster.databases.values()),
            participant_branches=self.participant_branches,
            epoch_commits=dict(self.epoch_commits),
            final_epoch=self.routing_epoch,
            migrations=self.migration_reports,
            crash_events=self.crash_events,
            failpoints_fired=dict(self.failpoints_fired))
        if self._trace is not None:
            digest = hashlib.sha256()
            for entry in self._trace:
                digest.update(repr(entry).encode())
            result.digest = digest.hexdigest()
            result.trace_length = len(self._trace)
        if self.sim.obs is not None:
            from ..obs.export import chrome_trace
            result.chrome = chrome_trace(
                self.sim.obs, metadata={"shard": self.shard_id})
        return result

    # -- outgoing messages ----------------------------------------------------------------
    def _send(self, dest_shard: int, kind: str, payload: Any) -> None:
        self._send_seq += 1
        self._outbox.append(CrossShardMessage(
            deliver_at=self.sim.now + self.scenario.cross_shard_latency,
            dest_shard=dest_shard, origin_shard=self.shard_id,
            origin_seq=self._send_seq, kind=kind, payload=payload))

    def _dispatch(self, message: CrossShardMessage):
        handler = {
            "prepare": self._on_prepare,
            "vote": self._on_vote,
            "decision": self._on_decision,
            "copy": self._on_copy,
            "fence": self._on_fence,
            "fence-ack": self._on_fence_ack,
            "epoch": self._on_epoch,
        }[message.kind]

        def deliver() -> None:
            handler(message)
        return deliver

    # -- workload -------------------------------------------------------------------------
    def _next_program(self, client: str) -> TransactionProgram:
        program = self.cluster.workload.next_program(client=client)
        # Re-key off the process-global program counter: transaction ids must
        # depend only on this shard's history, not on co-resident shards.
        self._program_seq += 1
        program.program_id = self._program_seq
        return program

    def _arrivals(self):
        workload = self.cluster.workload
        load = self.scenario.load_tps_per_shard
        cross_probability = (self.scenario.cross_shard_probability
                             if self.scenario.shard_count > 1 else 0.0)
        while True:
            yield self.sim.timeout(workload.interarrival_time(load))
            index = self._next_client
            self._next_client += 1
            delegate = self.cluster.choose_delegate(index)
            if not self.cluster.node(delegate).is_up:
                continue
            program = self._next_program(
                client=f"p{self.shard_id}.client-{index}")
            if (cross_probability and
                    self._xshard_stream.random() < cross_probability):
                participant = self._pick_participant()
                self.sim.spawn(
                    self._coordinate(program, delegate, participant),
                    name=f"shard{self.shard_id}.xact.{program.program_id}")
            else:
                self.sim.spawn(
                    self._local_transaction(program, delegate),
                    name=f"shard{self.shard_id}.txn.{program.program_id}")

    def _pick_participant(self) -> int:
        offset = self._target_stream.randrange(self.scenario.shard_count - 1)
        return (self.shard_id + 1 + offset) % self.scenario.shard_count

    def _local_transaction(self, program, delegate):
        submitted_at = self.sim.now
        result = yield self.cluster.submit(program, server=delegate)
        self.single_results.append(result)
        if result.committed:
            self.epoch_commits[self.routing_epoch] = \
                self.epoch_commits.get(self.routing_epoch, 0) + 1

    # -- cross-shard 2PC ------------------------------------------------------------------
    def _coordinate(self, program, delegate, participant: int):
        submitted_at = self.sim.now
        self._xact_seq += 1
        txn_id = f"x{self.shard_id}.{self._xact_seq}"
        local_result = yield self.cluster.submit(program, server=delegate)
        vote_event = self.sim.event()
        self._pending_votes[txn_id] = vote_event
        operations = tuple(
            (self._remote_op_stream.randrange(self.scenario.items_per_shard),
             self._remote_op_stream.random() < 0.5)
            for _ in range(self.scenario.remote_branch_ops))
        self._send(participant, "prepare",
                   (txn_id, self.shard_id, operations))
        participant_committed = yield vote_event
        del self._pending_votes[txn_id]
        committed = bool(local_result.committed and participant_committed)
        self._send(participant, "decision", (txn_id, committed))
        if committed:
            abort_reason = None
        elif not local_result.committed:
            abort_reason = local_result.abort_reason or "local-branch-abort"
        else:
            abort_reason = "participant-branch-abort"
        self.cross_results.append(CrossShardOutcome(
            txn_id=txn_id, committed=committed,
            response_time=self.sim.now - submitted_at,
            abort_reason=abort_reason,
            coordinator_shard=self.shard_id,
            participant_shard=participant))
        if committed:
            self.epoch_commits[self.routing_epoch] = \
                self.epoch_commits.get(self.routing_epoch, 0) + 1

    def _on_prepare(self, message: CrossShardMessage) -> None:
        txn_id, origin_shard, operations = message.payload
        self.sim.spawn(self._participant(txn_id, origin_shard, operations),
                       name=f"shard{self.shard_id}.branch.{txn_id}")

    def _participant(self, txn_id: str, origin_shard: int, operations):
        ops = []
        for position, (item_index, is_write) in enumerate(operations):
            key = f"item-{item_index}"
            if is_write:
                ops.append(Operation(OperationType.WRITE, key,
                                     value=f"{txn_id}@{position}"))
            else:
                ops.append(Operation(OperationType.READ, key))
        self._program_seq += 1
        program = TransactionProgram(operations=tuple(ops),
                                     client=f"branch.{txn_id}")
        program.program_id = self._program_seq
        self.participant_branches += 1
        delegate = self.cluster.choose_delegate(self.participant_branches)
        if not self.cluster.node(delegate).is_up:
            self._send(origin_shard, "vote", (txn_id, False))
            return
        result = yield self.cluster.submit(program, server=delegate)
        self._send(origin_shard, "vote", (txn_id, result.committed))

    def _on_vote(self, message: CrossShardMessage) -> None:
        txn_id, committed = message.payload
        waiter = self._pending_votes.get(txn_id)
        if waiter is not None:
            waiter.succeed(committed)

    def _on_decision(self, message: CrossShardMessage) -> None:
        # The participant branch already terminated through this shard's
        # replication technique at prepare time; the decision leg closes the
        # protocol (and is what the fence/epoch machinery synchronises with).
        pass

    # -- scripted migration ---------------------------------------------------------------
    def _start_migration(self, plan: MigrationPlan):
        def starter() -> None:
            self.sim.spawn(self._migrate(plan),
                           name=f"shard{self.shard_id}.migration")
        return starter

    def _migrate(self, plan: MigrationPlan):
        self._xact_seq += 1
        migration_id = f"m{self.shard_id}.{self._xact_seq}"
        if plan.failpoint is not None:
            phase, server_index, recover_after = plan.failpoint
            self._armed_failpoints[phase] = (server_index, recover_after)
        store = self.cluster.databases[self._servers[0]].items
        keys = store.keys()[:plan.key_count]
        chunks = [keys[start:start + plan.chunk_size]
                  for start in range(0, len(keys), plan.chunk_size)]
        report = ShardMigrationReport(
            migration_id=migration_id, source_shard=self.shard_id,
            dest_shard=plan.dest_shard, key_count=len(keys),
            chunks=len(chunks), started_ms=self.sim.now)
        self.migration_reports.append(report)
        self._fire_failpoint("migration.copy-start")
        for chunk in chunks:
            yield self.sim.timeout(plan.chunk_service_ms)
            snapshot = tuple(
                (key, store.get(key).value, store.get(key).version)
                for key in chunk)
            self._send(plan.dest_shard, "copy", (migration_id, snapshot))
            self._fire_failpoint("migration.copy-chunk")
        fence_event = self.sim.event()
        self._fence_acks[migration_id] = fence_event
        self._send(plan.dest_shard, "fence", (migration_id,))
        self._fire_failpoint("migration.fence")
        yield fence_event
        del self._fence_acks[migration_id]
        report.fenced_ms = self.sim.now
        new_epoch = self.routing_epoch + 1
        self._apply_epoch(new_epoch)
        for shard in range(self.scenario.shard_count):
            if shard != self.shard_id:
                self._send(shard, "epoch", (migration_id, new_epoch))
        self._fire_failpoint("migration.epoch-logged")
        report.completed_ms = self.sim.now
        report.completed = True
        report.epoch = new_epoch

    def _on_copy(self, message: CrossShardMessage) -> None:
        migration_id, snapshot = message.payload
        for server in self._servers:
            store = self.cluster.databases[server].items
            for key, value, version in snapshot:
                imported = f"{migration_id}:{key}"
                if store.lookup(imported) is None:
                    store.create(imported, value)
                else:
                    store.get(imported).value = value

    def _on_fence(self, message: CrossShardMessage) -> None:
        (migration_id,) = message.payload
        self._send(message.origin_shard, "fence-ack", (migration_id,))

    def _on_fence_ack(self, message: CrossShardMessage) -> None:
        (migration_id,) = message.payload
        waiter = self._fence_acks.get(migration_id)
        if waiter is not None:
            waiter.succeed()

    def _on_epoch(self, message: CrossShardMessage) -> None:
        _migration_id, epoch = message.payload
        self._apply_epoch(epoch)

    def _apply_epoch(self, epoch: int) -> None:
        if epoch > self.routing_epoch:
            self.routing_epoch = epoch

    # -- failure injection ----------------------------------------------------------------
    def _schedule_crash(self, plan: CrashPlan) -> None:
        server = self._servers[plan.server_index]

        def crash() -> None:
            self.cluster.crash_server(server)
            self.crash_events.append(ShardCrashRecord(
                at_ms=self.sim.now, shard=self.shard_id, server=server,
                kind="crash"))

        def recover() -> None:
            self.cluster.recover_server(server)
            self.crash_events.append(ShardCrashRecord(
                at_ms=self.sim.now, shard=self.shard_id, server=server,
                kind="recover"))

        self.sim.call_at(plan.at_ms, crash)
        if plan.recover_at_ms is not None:
            self.sim.call_at(plan.recover_at_ms, recover)

    def _fire_failpoint(self, phase: str) -> None:
        armed = self._armed_failpoints.pop(phase, None)
        if armed is None:
            return
        server_index, recover_after = armed
        server = self._servers[server_index]
        self.failpoints_fired[phase] = self.failpoints_fired.get(phase, 0) + 1
        if self.cluster.node(server).is_up:
            self.cluster.crash_server(server)
            self.crash_events.append(ShardCrashRecord(
                at_ms=self.sim.now, shard=self.shard_id, server=server,
                kind=f"failpoint:{phase}"))
        if recover_after is not None:
            def recover() -> None:
                self.cluster.recover_server(server)
                self.crash_events.append(ShardCrashRecord(
                    at_ms=self.sim.now, shard=self.shard_id, server=server,
                    kind="recover"))
            self.sim.call_at(self.sim.now + recover_after, recover)


def build_shard_world(shard_id: int, scenario: ShardScenario) -> ShardWorld:
    """The :class:`~repro.sim.parallel.ShardSpec` builder entry point."""
    return ShardWorld(shard_id, scenario)


# -- running a scenario -------------------------------------------------------------------


@dataclass
class ParallelShardedReport:
    """One conservative parallel run of a :class:`ShardScenario`."""

    scenario: ShardScenario
    workers: int
    windows: int
    messages: int
    shard_results: Dict[int, ShardResult]
    statistics: PartitionedRunStatistics
    #: Worker count the caller requested, before clamping to the shard count.
    requested_workers: int = 0
    #: Wall-clock split of the run (see ParallelRunReport).
    build_seconds: float = 0.0
    run_seconds: float = 0.0

    @property
    def digests(self) -> Dict[int, Optional[str]]:
        """Per-shard golden-trace digests (``None`` without ``trace``)."""
        return {shard_id: result.digest
                for shard_id, result in sorted(self.shard_results.items())}

    @property
    def total_events(self) -> int:
        """Events scheduled across all shards (the aggregate numerator)."""
        return sum(result.events_scheduled
                   # repro: allow(ordering-hazard): integer sum, exact at any order
                   for result in self.shard_results.values())


def merge_statistics(scenario: ShardScenario,
                     shard_results: Dict[int, ShardResult]
                     ) -> PartitionedRunStatistics:
    """Fold per-shard results into one :class:`PartitionedRunStatistics`.

    Shards are folded in ascending shard id, so the merged statistics are a
    pure function of the per-shard results — identical at every worker count.
    """
    statistics = PartitionedRunStatistics(
        technique=scenario.technique,
        partition_count=scenario.shard_count,
        offered_load_tps=scenario.load_tps_per_shard * scenario.shard_count,
        simulated_duration_ms=scenario.duration_ms)
    statistics.single = RunStatistics("single-partition")
    statistics.cross = RunStatistics("cross-partition")
    statistics.single.simulated_duration_ms = scenario.duration_ms
    statistics.cross.simulated_duration_ms = scenario.duration_ms
    crash_events: List[ShardCrashRecord] = []
    for shard_id in sorted(shard_results):
        result = shard_results[shard_id]
        for outcome in result.single_results:
            statistics.single.record(outcome)
        for outcome in result.cross_results:
            statistics.cross.record(outcome)
        statistics.per_partition_commits[shard_id] = result.commits_on_shard
        for epoch, commits in sorted(result.epoch_commits.items()):
            statistics.epoch_commits[epoch] = \
                statistics.epoch_commits.get(epoch, 0) + commits
        statistics.migrations.extend(result.migrations)
        crash_events.extend(result.crash_events)
        for phase, count in sorted(result.failpoints_fired.items()):
            statistics.failpoints_fired[phase] = \
                statistics.failpoints_fired.get(phase, 0) + count
        statistics.final_epoch = max(statistics.final_epoch,
                                     result.final_epoch)
    crash_events.sort(key=lambda record: (record.at_ms, record.shard,
                                          record.server))
    statistics.injected_crashes = crash_events
    return statistics


def run_parallel_sharded(scenario: ShardScenario, workers: int = 0,
                         detect_races: bool = False) -> ParallelShardedReport:
    """Run ``scenario`` to completion with ``workers`` worker processes.

    ``workers=0`` runs the serial reference engine (all shards in this
    process); any positive count fans the shards out over that many worker
    processes.  Per-shard traces, results and the merged statistics are
    identical in every mode.  ``detect_races=True`` enables the window
    protocol cross-checks of :func:`repro.sim.parallel.run_sharded` —
    observation only, no schedule changes.
    """
    specs = [ShardSpec(shard_id=shard_id,
                       builder="repro.partition.parallel_cluster:"
                               "build_shard_world",
                       config=scenario)
             for shard_id in range(scenario.shard_count)]
    report: ParallelRunReport = run_sharded(
        specs, lookahead=scenario.lookahead,
        until=scenario.duration_ms, workers=workers,
        detect_races=detect_races)
    statistics = merge_statistics(scenario, report.shard_results)
    return ParallelShardedReport(
        scenario=scenario, workers=report.workers, windows=report.windows,
        messages=report.messages, shard_results=report.shard_results,
        statistics=statistics, requested_workers=report.requested_workers,
        build_seconds=report.build_seconds, run_seconds=report.run_seconds)


def merged_chrome_trace(report: ParallelShardedReport) -> Dict[str, Any]:
    """One Chrome trace for the whole run — one ``pid`` per shard."""
    from ..obs.export import merge_chrome_traces
    traces = {shard_id: result.chrome
              for shard_id, result in sorted(report.shard_results.items())
              if result.chrome is not None}
    if not traces:
        raise ValueError(
            "no shard recorded a trace; run the scenario with observe=True")
    return merge_chrome_traces(traces)
