"""Facade assembling a partitioned replicated database.

A :class:`PartitionedCluster` shards the keyspace across several independent
replica groups — each a full :class:`~repro.replication.ReplicatedDatabaseCluster`
running its own group-communication system and safety technique — all living
on one shared :class:`~repro.sim.engine.Simulator` and one shared
:class:`~repro.network.lan.Lan`.  Sharding removes the single atomic-broadcast
domain that caps the throughput of the paper's system: partitions order and
apply their transactions independently, so capacity grows with the partition
count as long as transactions stay within one partition.

Single-partition transactions are routed straight to the owning group (the
fast path); transactions spanning several partitions go through the
:class:`~repro.partition.coordinator.CrossPartitionCoordinator`'s two-phase
commit, which composes atomicity across shards with each shard's own safety
level.

Typical use::

    from repro.partition import PartitionedCluster
    from repro.workload import SimulationParameters

    params = SimulationParameters.small().with_overrides(
        partition_count=4, cross_partition_probability=0.1)
    cluster = PartitionedCluster("group-safe", params=params, seed=42)
    cluster.start()
    outcome = cluster.run_transaction(cluster.workload.next_program())
    cluster.run(until=5_000)
    print(outcome.value)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..db.operations import TransactionProgram
from ..network.lan import Lan
from ..replication.cluster import TECHNIQUES, ReplicatedDatabaseCluster
from ..replication.results import TransactionResult
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.process import Process
from ..workload.params import SimulationParameters
from .coordinator import CrossPartitionCoordinator, CrossPartitionOutcome
from .partitioner import Partitioner, make_partitioner
from .router import TransactionRouter
from .workload import PartitionedWorkloadGenerator


class PartitionedCluster:
    """Several independent replica groups sharing one simulated world."""

    def __init__(self, technique: str = "group-safe",
                 params: Optional[SimulationParameters] = None,
                 seed: int = 0, partition_count: Optional[int] = None,
                 strategy: str = "hash",
                 sim: Optional[Simulator] = None,
                 routing: str = "update-everywhere",
                 techniques: Optional[Sequence[str]] = None) -> None:
        self.params = params or SimulationParameters.paper()
        self.partition_count = (partition_count if partition_count is not None
                                else self.params.partition_count)
        if self.partition_count < 1:
            raise ValueError(
                f"partition count must be >= 1, got {self.partition_count!r}")
        if techniques is None:
            techniques = [technique] * self.partition_count
        techniques = list(techniques)
        if len(techniques) != self.partition_count:
            raise ValueError(
                f"got {len(techniques)} techniques for "
                f"{self.partition_count} partitions")
        for name in techniques:
            if name not in TECHNIQUES:
                raise ValueError(
                    f"unknown technique {name!r}; expected one of {TECHNIQUES}")
        self.techniques = techniques
        self.sim = sim or Simulator(seed=seed)
        self.lan = Lan(self.sim, latency=self.params.network_latency)
        self.partitioner: Partitioner = make_partitioner(
            strategy, self.partition_count, self.params.item_count)
        #: One full replica group per partition, named ``p<id>.s<j>``.
        self.groups: List[ReplicatedDatabaseCluster] = [
            ReplicatedDatabaseCluster(
                group_technique, params=self.params, sim=self.sim,
                lan=self.lan, routing=routing,
                name_prefix=f"p{partition_id}.")
            for partition_id, group_technique in enumerate(techniques)]
        self.router = TransactionRouter(self.partitioner)
        self.workload = PartitionedWorkloadGenerator(
            self.sim, self.params, self.partitioner)
        self.coordinator = CrossPartitionCoordinator(self)
        self._started = False

    # ------------------------------------------------------------------ access
    def group(self, partition_id: int) -> ReplicatedDatabaseCluster:
        """The replica group owning partition ``partition_id``."""
        return self.groups[partition_id]

    def partition_of(self, key: str) -> int:
        """The partition id owning item ``key``."""
        return self.partitioner.partition_of(key)

    def group_of(self, key: str) -> ReplicatedDatabaseCluster:
        """The replica group owning item ``key``."""
        return self.groups[self.partition_of(key)]

    def server_names(self) -> List[str]:
        """Names of every server across all partitions."""
        names: List[str] = []
        for group in self.groups:
            names.extend(group.server_names())
        return names

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start every replica group."""
        if self._started:
            return
        self._started = True
        for group in self.groups:
            group.start()

    def run(self, until: Optional[float] = None) -> float:
        """Advance the shared simulation (convenience passthrough)."""
        return self.sim.run(until=until)

    # ------------------------------------------------------------------ submission
    def submit(self, program: TransactionProgram,
               client_index: int = 0) -> Event:
        """Submit ``program``, routing by the partitions it touches.

        Returns an event that fires with a
        :class:`~repro.replication.results.TransactionResult` (fast path) or
        a :class:`~repro.partition.coordinator.CrossPartitionOutcome`
        (coordinated path).
        """
        partitions = self.router.classify(program)
        if len(partitions) == 1:
            group = self.groups[partitions[0]]
            if not group.up_servers():
                raise RuntimeError(
                    f"partition {partitions[0]} has no live servers")
            return group.submit(program, client_index=client_index)
        return self.coordinator.submit(program, client_index=client_index)

    def run_transaction(self, program: TransactionProgram) -> Process:
        """Submit and wrap the wait for the outcome into a process.

        A program whose owning partition has no live servers completes with
        an aborted :class:`~repro.replication.results.TransactionResult`
        (mirroring the coordinated path's unavailability abort) instead of
        raising inside the simulation.
        """
        def waiter():
            try:
                event = self.submit(program)
            except RuntimeError:
                return TransactionResult(
                    txn_id=f"rejected:{program.program_id}", committed=False,
                    delegate="", submitted_at=self.sim.now,
                    responded_at=self.sim.now,
                    abort_reason="partition-unavailable")
            outcome = yield event
            return outcome
        return self.sim.spawn(waiter(), name=f"client.{program.program_id}")

    # ------------------------------------------------------------------ failures
    def crash_server(self, partition_id: int, server: str) -> None:
        """Crash one server of one partition's group."""
        self.groups[partition_id].crash_server(server)

    def crash_partition(self, partition_id: int) -> None:
        """Crash every server of one partition (shard-wide outage)."""
        self.groups[partition_id].crash_all()

    def recover_server(self, partition_id: int, server: str) -> Process:
        """Recover one server of one partition's group."""
        return self.groups[partition_id].recover_server(server)

    def up_partitions(self) -> List[int]:
        """Ids of partitions with at least one server up."""
        return [partition_id for partition_id, group in enumerate(self.groups)
                if group.up_servers()]

    # ------------------------------------------------------------------ results
    def all_single_partition_results(self) -> List:
        """Fast-path results across all groups, in response order.

        Excludes the internal update-only transactions the cross-partition
        coordinator submits to install its branches — those are 2PC work,
        not client-visible fast-path results.
        """
        branch_ids = self.coordinator.branch_txn_ids
        results = []
        for group in self.groups:
            results.extend(result for result in group.all_results()
                           if result.txn_id not in branch_ids)
        return sorted(results, key=lambda result: result.responded_at)

    def cross_partition_outcomes(self) -> List[CrossPartitionOutcome]:
        """Every coordinated outcome produced so far."""
        return list(self.coordinator.outcomes)

    def committed_on_partition(self, partition_id: int, txn_id: str) -> bool:
        """True if ``txn_id`` is committed on every server of the partition."""
        return self.groups[partition_id].committed_everywhere(txn_id)

    def commit_counts(self) -> Dict[int, int]:
        """Per-partition count of locally committed transactions."""
        return {
            partition_id: sum(group.database(name).committed_count
                              for name in group.server_names())
            for partition_id, group in enumerate(self.groups)}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<PartitionedCluster partitions={self.partition_count} "
                f"techniques={self.techniques}>")
