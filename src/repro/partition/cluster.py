"""Facade assembling a partitioned replicated database.

A :class:`PartitionedCluster` shards the keyspace across several independent
replica groups — each a full :class:`~repro.replication.ReplicatedDatabaseCluster`
running its own group-communication system and safety technique — all living
on one shared :class:`~repro.sim.engine.Simulator` and one shared
:class:`~repro.network.lan.Lan`.  Sharding removes the single atomic-broadcast
domain that caps the throughput of the paper's system: partitions order and
apply their transactions independently, so capacity grows with the partition
count as long as transactions stay within one partition.

Ownership of the keyspace is *live state*: an epoch-versioned
:class:`~repro.partition.routing.RoutingTable` maps key ranges to groups and
supports online :meth:`split_shard` / :meth:`merge_shards` /
:meth:`migrate`, all while the load drivers keep submitting.  Migration is a
mini-protocol layered on the existing pieces:

1. **Copy.**  The range's items are read on a source delegate and installed
   on the destination group as ordinary update-only transactions through the
   group's *own* replication technique — so the copy is exactly as durable
   and as replicated as any transaction of that group.
2. **Dual-write window.**  From the moment the migration starts, every
   client or 2PC write that commits into the migrating range on the source
   is forwarded to the destination the same way, keeping the copy fresh.
3. **Fence.**  A brief write fence refuses new submissions into the range
   (:class:`~repro.partition.routing.WrongEpochError`; the submission path
   retries), in-flight writers are drained, and a delta pass re-copies every
   key whose version moved since the warm copy.
4. **Epoch bump.**  The *new* ownership map is force-logged (an ``EPOCH``
   write-ahead-log record) on the destination delegate before it is
   installed — so a crash mid-migration recovers to a consistent map: old
   owner before the record is durable, new owner after.

Single-partition transactions are routed straight to the owning group (the
fast path); transactions spanning several partitions go through the
:class:`~repro.partition.coordinator.CrossPartitionCoordinator`'s two-phase
commit, which composes atomicity across shards with each shard's own safety
level and validates branch routing epochs at vote collection.

Typical use::

    from repro.partition import PartitionedCluster
    from repro.workload import SimulationParameters

    params = SimulationParameters.small().with_overrides(
        partition_count=4, cross_partition_probability=0.1)
    cluster = PartitionedCluster("group-safe", params=params, seed=42,
                                 strategy="range")
    cluster.start()
    outcome = cluster.run_transaction(cluster.workload.next_program())
    cluster.rebalance()                  # move the hottest half-shard away
    cluster.run(until=5_000)
    print(outcome.value)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..db.operations import Operation, OperationType, TransactionProgram
from ..db.wal import LogRecord
from ..network.lan import Lan
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Observability
from ..replication.cluster import TECHNIQUES, ReplicatedDatabaseCluster
from ..replication.results import TransactionResult
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.process import Process
from ..workload.params import SimulationParameters
from .coordinator import (ABORT_WRONG_EPOCH, CrossPartitionCoordinator,
                          CrossPartitionOutcome)
from .routing import KeyRange, RoutingTable, WrongEpochError
from .router import TransactionRouter
from .workload import PartitionedWorkloadGenerator


@dataclass
class MigrationReport:
    """Everything one live migration did, for the experiments and tests."""

    key_range: KeyRange
    source_group: int
    destination_group: int
    started_at: float
    fence_started_at: float = 0.0
    completed_at: float = 0.0
    aborted: bool = False
    abort_reason: Optional[str] = None
    #: Keys installed by the warm copy pass.
    keys_copied: int = 0
    #: Keys re-copied by the under-fence delta pass.
    delta_keys_copied: int = 0
    #: Client/2PC writes forwarded to the destination during the window.
    forwarded_writes: int = 0
    #: True once the under-fence source/destination comparison matched.
    verified: bool = False
    #: Epoch installed by the bump (None if the migration aborted).
    epoch: Optional[int] = None
    #: Copy-phase telemetry: chunk installs the driver keeps in flight.
    copy_concurrency: int = 1
    #: When the warm copy finished (0 while running / if it never did).
    copy_completed_at: float = 0.0
    #: Chunk transactions installed by the warm copy.
    copy_chunks: int = 0
    #: Most chunk installs observed in flight at once.
    copy_inflight_peak: int = 0
    #: Times the token throttle paused the copy for foreground load.
    throttle_waits: int = 0
    #: Total sim-time the copy spent throttled.
    throttle_wait_ms: float = 0.0

    @property
    def completed(self) -> bool:
        """True if the migration installed its epoch bump."""
        return self.epoch is not None

    @property
    def duration_ms(self) -> float:
        """Wall-clock (simulated) duration of the whole migration."""
        end = self.completed_at or self.fence_started_at or self.started_at
        return end - self.started_at

    @property
    def copy_duration_ms(self) -> float:
        """How long the (overlapped, throttled) warm copy phase took."""
        if not self.copy_completed_at:
            return 0.0
        return self.copy_completed_at - self.started_at

    @property
    def fence_duration_ms(self) -> float:
        """How long new writes to the range were fenced out."""
        if not self.fence_started_at or not self.completed_at:
            return 0.0
        return self.completed_at - self.fence_started_at


@dataclass
class CrashEvent:
    """One injected crash or recovery, for the failure-injection audit trail."""

    at: float
    kind: str                      # "crash" | "recover"
    partition_id: int
    server: Optional[str] = None   # None = the whole group

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        scope = self.server or "group"
        return f"<CrashEvent {self.kind} p{self.partition_id}.{scope} @{self.at:.1f}>"


@dataclass
class _Failpoint:
    """One registered crash-injection hook (see :meth:`PartitionedCluster.
    add_failpoint`)."""

    phase: str
    callback: Callable[[Dict[str, object]], None]
    once: bool = True
    fired: int = 0


@dataclass
class _MigrationEntry:
    """Book-keeping of one in-flight migration (dual-writes, drain)."""

    key_range: KeyRange
    source_group: int
    destination_group: int
    report: MigrationReport
    inflight: List[Process] = field(default_factory=list)
    active: bool = True


class PartitionedCluster:
    """Several independent replica groups sharing one simulated world."""

    #: Base backoff between wrong-epoch submission retries (ms); grows
    #: linearly with the attempt, capped at the max.  The budget must ride
    #: out a whole migration fence (typically the residual response time of
    #: the source shard), not just a metadata bump.
    WRONG_EPOCH_RETRY_BACKOFF = 5.0
    WRONG_EPOCH_MAX_BACKOFF = 50.0
    #: Submission attempts before a wrong-epoch retry gives up.
    WRONG_EPOCH_MAX_RETRIES = 100
    #: Default chunk installs a migration's warm copy keeps in flight at
    #: once, overlapping the destination group's commit latency.
    DEFAULT_COPY_CONCURRENCY = 4
    #: Combined (foreground + copy) transaction budget the copy throttles
    #: to: the chunk dispatch rate is the budget minus the recent client
    #: submit rate, floored at DEFAULT_COPY_MIN_TPS.
    DEFAULT_COPY_BUDGET_TPS = 500.0
    DEFAULT_COPY_MIN_TPS = 50.0
    #: Trailing window (ms) over which the client submit rate is measured.
    SUBMIT_RATE_WINDOW_MS = 1_000.0

    def __init__(self, technique: str = "group-safe",
                 params: Optional[SimulationParameters] = None,
                 seed: int = 0, partition_count: Optional[int] = None,
                 strategy: str = "hash",
                 sim: Optional[Simulator] = None,
                 routing: str = "update-everywhere",
                 techniques: Optional[Sequence[str]] = None) -> None:
        self.params = params or SimulationParameters.paper()
        self.partition_count = (partition_count if partition_count is not None
                                else self.params.partition_count)
        if self.partition_count < 1:
            raise ValueError(
                f"partition count must be >= 1, got {self.partition_count!r}")
        if techniques is None:
            techniques = [technique] * self.partition_count
        techniques = list(techniques)
        if len(techniques) != self.partition_count:
            raise ValueError(
                f"got {len(techniques)} techniques for "
                f"{self.partition_count} partitions")
        for name in techniques:
            if name not in TECHNIQUES:
                raise ValueError(
                    f"unknown technique {name!r}; expected one of {TECHNIQUES}")
        self.techniques = techniques
        self.strategy = strategy
        self.sim = sim or Simulator(seed=seed)
        #: Labelled metrics registry of the whole cluster; the router, the
        #: 2PC coordinator and the client drivers record onto it, and a
        #: snapshot-time collector samples the pull-style sources (LAN, WAL,
        #: buffers, controller).  See :mod:`repro.obs.metrics`.
        self.metrics = MetricsRegistry()
        self.lan = Lan(self.sim, latency=self.params.network_latency)
        #: The live, epoch-versioned ownership map.
        self.routing: RoutingTable = RoutingTable.from_strategy(
            strategy, self.partition_count, self.params.item_count)
        #: One full replica group per partition, named ``p<id>.s<j>``.
        self.groups: List[ReplicatedDatabaseCluster] = [
            ReplicatedDatabaseCluster(
                group_technique, params=self.params, sim=self.sim,
                lan=self.lan, routing=routing,
                name_prefix=f"p{partition_id}.")
            for partition_id, group_technique in enumerate(techniques)]
        self.router = TransactionRouter(self.routing, metrics=self.metrics)
        self.workload = PartitionedWorkloadGenerator(
            self.sim, self.params, self.routing)
        self.coordinator = CrossPartitionCoordinator(self)
        #: In-flight migrations (dual-write registration, fence drains).
        self._migrations: List[_MigrationEntry] = []
        #: Per-group submissions whose response has not fired yet.  A
        #: migration starting *now* must dual-write the writes that were
        #: already in flight on its source group, not just future ones.
        self._inflight_by_group: Dict[int, List] = {
            partition_id: [] for partition_id in range(self.partition_count)}
        #: Per-group compaction thresholds for the in-flight lists (doubled
        #: after each compaction so the scan stays amortised O(1) per submit).
        self._inflight_compact_at: Dict[int, int] = {
            partition_id: 128 for partition_id in range(self.partition_count)}
        #: One report per migration ever started, in start order.
        self.migration_reports: List[MigrationReport] = []
        #: Transaction ids of internal migration work (copy chunks and
        #: forwarded dual-writes) — excluded from fast-path results like the
        #: coordinator's branch installs.
        self.migration_txn_ids: set = set()
        #: Timestamps of recent client submissions (for the copy throttle).
        self._recent_submits: Deque[float] = deque()
        #: The autobalance controller driving :meth:`rebalance`, if one is
        #: attached (see :class:`repro.partition.controller.
        #: RebalanceController`, which registers itself here).
        self.controller = None
        #: Registered crash-injection hooks, keyed by protocol phase (see
        #: :meth:`add_failpoint`).  Empty outside failure experiments.
        self._failpoints: Dict[str, List[_Failpoint]] = {}
        #: Phase -> number of times a registered failpoint fired there.
        self.failpoints_fired: Dict[str, int] = {}
        #: Every injected crash / recovery, in simulation order — the audit
        #: trail the failure-matrix experiments attach to their report.
        self.crash_log: List[CrashEvent] = []
        self._started = False
        self.metrics.register_collector(self._collect_metrics)

    # ------------------------------------------------------------------ observability
    def enable_observability(self) -> Observability:
        """Attach (or return) the span tracer on this cluster's simulator.

        Idempotent.  Tracing is observation-only — spans read the simulated
        clock and append to Python lists — so enabling it cannot change the
        event schedule (the golden-trace digests hold with tracing on).
        """
        if self.sim.obs is None:
            Observability(self.sim)
        return self.sim.obs

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Snapshot-time sampler for the pull-style counter sources."""
        registry.gauge("routing_epoch", component="routing").set(
            getattr(self.routing, "epoch", 0))
        lan = registry.gauge
        lan("lan_messages", component="lan", kind="sent").set(
            self.lan.sent_count)
        lan("lan_messages", component="lan", kind="delivered").set(
            self.lan.delivered_count)
        lan("lan_messages", component="lan", kind="dropped").set(
            self.lan.dropped_count)
        for cause, count in sorted(self.lan.dropped_by_cause.items()):
            lan("lan_drops", component="lan", cause=cause).set(count)
        for partition_id, group in enumerate(self.groups):
            technique = self.techniques[partition_id]
            if group.gcs is not None:
                detector = group.gcs.failure_detector
                registry.gauge("fd_suspicions", shard=partition_id,
                               kind="suspect").set(detector.suspicion_count)
                registry.gauge("fd_suspicions", shard=partition_id,
                               kind="restore").set(detector.restore_count)
            for server in group.server_names():
                database = group.database(server)
                labels = dict(shard=partition_id, server=server,
                              technique=technique)
                registry.gauge("db_committed", **labels).set(
                    database.committed_count)
                registry.gauge("db_aborted", **labels).set(
                    database.aborted_count)
                registry.gauge("wal_flushes", **labels).set(
                    database.wal.flush_count)
                registry.gauge("buffer_reads", kind="hit", **labels).set(
                    database.buffer.read_hits)
                registry.gauge("buffer_reads", kind="miss", **labels).set(
                    database.buffer.read_misses)
        controller = self.controller
        if controller is not None:
            stats = controller.stats
            for field in ("windows_observed", "rebalances_triggered",
                          "skipped_below_threshold", "skipped_cooldown",
                          "skipped_hysteresis", "skipped_migration_active",
                          "trigger_failures"):
                registry.gauge(f"controller_{field}",
                               component="controller").set(
                    getattr(stats, field))
        for phase, count in self.failpoints_fired.items():
            registry.gauge("failpoints_fired", phase=phase).set(count)

    # ------------------------------------------------------------------ access
    @property
    def partitioner(self) -> RoutingTable:
        """Deprecated alias: the routing table implements the old protocol."""
        return self.routing

    def group(self, partition_id: int) -> ReplicatedDatabaseCluster:
        """The replica group owning partition ``partition_id``."""
        return self.groups[partition_id]

    def partition_of(self, key: str) -> int:
        """The partition id currently owning item ``key``."""
        return self.routing.partition_of(key)

    def group_of(self, key: str) -> ReplicatedDatabaseCluster:
        """The replica group currently owning item ``key``."""
        return self.groups[self.partition_of(key)]

    def server_names(self) -> List[str]:
        """Names of every server across all partitions."""
        names: List[str] = []
        for group in self.groups:
            names.extend(group.server_names())
        return names

    @property
    def migration_active(self) -> bool:
        """True while any live migration is in flight."""
        return bool(self._migrations)

    def routing_fenced(self, keys) -> bool:
        """True if any of ``keys`` is inside a write-fenced (migrating) range."""
        return self.routing.has_fences and self.routing.is_fenced(keys)

    def _note_submit(self) -> None:
        now = self.sim.now
        submits = self._recent_submits
        submits.append(now)
        horizon = now - self.SUBMIT_RATE_WINDOW_MS
        while submits and submits[0] < horizon:
            submits.popleft()

    def recent_submit_rate(self) -> float:
        """Client submissions per second over the trailing rate window.

        Counts every :meth:`submit` attempt (including fenced ones that were
        refused — they are still foreground pressure); the migration copy
        throttles its chunk dispatch against this.
        """
        submits = self._recent_submits
        horizon = self.sim.now - self.SUBMIT_RATE_WINDOW_MS
        while submits and submits[0] < horizon:
            submits.popleft()
        return len(submits) / (self.SUBMIT_RATE_WINDOW_MS / 1000.0)

    # ------------------------------------------------------------------ failpoints
    #: Protocol phases at which a failpoint can fire.  Each is keyed to a
    #: WAL / 2PC / migration state transition, never to wall time, so a
    #: registered crash lands at a *deterministic* point of the protocol:
    #:
    #: * ``2pc.prepared`` — every branch voted yes; the decision record has
    #:   not been force-logged yet (context: ``xid``, ``home``,
    #:   ``delegates``).
    #: * ``2pc.decided`` — the decision record is durable and registered for
    #:   replay; phase 2 has not started (same context).
    #: * ``migration.copy-start`` — the warm copy is about to dispatch its
    #:   first chunk (context: ``report``).
    #: * ``migration.copy-chunk`` — one warm-copy chunk just committed on the
    #:   destination (context: ``report``, ``chunk_index``).
    #: * ``migration.fence`` — the write fence is up, the drain has not
    #:   started (context: ``report``).
    #: * ``migration.epoch-logged`` — the new map's EPOCH record is durable
    #:   on the destination delegate; the old owner has not been told and
    #:   the table has not moved yet (context: ``report``, ``epoch``).
    FAILPOINT_PHASES = ("2pc.prepared", "2pc.decided", "migration.copy-start",
                        "migration.copy-chunk", "migration.fence",
                        "migration.epoch-logged")

    def add_failpoint(self, phase: str,
                      callback: Callable[[Dict[str, object]], None],
                      once: bool = True) -> None:
        """Register ``callback`` to run when the protocol reaches ``phase``.

        The callback receives a context dict (``phase``, ``cluster``, plus
        the phase-specific keys listed on :attr:`FAILPOINT_PHASES`) and
        typically calls :meth:`crash_server` / :meth:`crash_partition` — the
        deterministic crash-injection mechanism of the partitioned failure
        matrix.  With ``once`` (the default) the hook is removed after its
        first firing.
        """
        if phase not in self.FAILPOINT_PHASES:
            raise ValueError(f"unknown failpoint phase {phase!r}; expected "
                             f"one of {self.FAILPOINT_PHASES}")
        self._failpoints.setdefault(phase, []).append(
            _Failpoint(phase=phase, callback=callback, once=once))

    def fire_failpoint(self, phase: str, **context) -> int:
        """Fire the failpoints of ``phase`` (internal; called by protocol code).

        Returns how many hooks ran.  A no-op (and O(1)) when nothing is
        registered, so production paths pay nothing for the instrumentation.
        """
        hooks = self._failpoints.get(phase)
        if not hooks:
            return 0
        context["phase"] = phase
        context["cluster"] = self
        fired = 0
        survivors: List[_Failpoint] = []
        for hook in hooks:
            hook.fired += 1
            fired += 1
            self.failpoints_fired[phase] = \
                self.failpoints_fired.get(phase, 0) + 1
            hook.callback(dict(context))
            if not hook.once:
                survivors.append(hook)
        if survivors:
            self._failpoints[phase] = survivors
        else:
            del self._failpoints[phase]
        return fired

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start every replica group."""
        if self._started:
            return
        self._started = True
        for group in self.groups:
            group.start()

    def run(self, until: Optional[float] = None) -> float:
        """Advance the shared simulation (convenience passthrough)."""
        return self.sim.run(until=until)

    # ------------------------------------------------------------------ submission
    def submit(self, program: TransactionProgram,
               client_index: int = 0) -> Event:
        """Submit ``program``, routing by the partitions it touches.

        Returns an event that fires with a
        :class:`~repro.replication.results.TransactionResult` (fast path) or
        a :class:`~repro.partition.coordinator.CrossPartitionOutcome`
        (coordinated path).  Raises
        :class:`~repro.partition.routing.WrongEpochError` when the program
        touches a range fenced by a live migration — callers retry (see
        :meth:`submit_retrying`).
        """
        self.routing.maybe_roll(self.sim.now)
        self._note_submit()
        keys = [operation.key for operation in program.operations]
        if self.routing_fenced(keys):
            raise WrongEpochError(
                f"program {program.program_id} touches a fenced range of a "
                f"live migration; retry against the new epoch",
                epoch_seen=self.routing.epoch, epoch_now=self.routing.epoch)
        self.routing.note_keys(keys)
        snapshot = self.router.snapshot()
        partitions = self.router.classify(program, snapshot=snapshot,
                                          keys=keys)
        obs = self.sim.obs
        if obs is not None:
            obs.instant("router.classify", track="router",
                        labels={"partitions": len(partitions),
                                "epoch": getattr(snapshot, "epoch", 0)})
        if len(partitions) == 1:
            group = self.groups[partitions[0]]
            if not any(node.is_up for node in group.nodes.values()):
                raise RuntimeError(
                    f"partition {partitions[0]} has no live servers")
            return self.submit_to_group(partitions[0], program,
                                        client_index=client_index)
        return self.coordinator.submit(program, client_index=client_index,
                                       snapshot=snapshot)

    def submit_to_group(self, partition_id: int, program: TransactionProgram,
                        server: Optional[str] = None,
                        client_index: int = 0) -> Event:
        """Submit ``program`` directly to one group, with dual-write capture.

        Every install path of the cluster — the fast path and the 2PC
        coordinator's phase-2 branch commits — funnels through here, so a
        live migration sees *all* writes landing in its range and can
        forward them to the destination group.
        """
        event = self.groups[partition_id].submit(program, server=server,
                                                 client_index=client_index)
        inflight = self._inflight_by_group[partition_id]
        if len(inflight) >= self._inflight_compact_at[partition_id]:
            # Amortised compaction: readers filter by ``triggered`` anyway,
            # so stale entries are harmless — compacting on every submit made
            # the fast path O(in-flight transactions) per submission.  The
            # doubling threshold keeps the scan O(1) amortised even when an
            # overloaded open loop grows the genuinely-in-flight population.
            inflight[:] = [pending for pending in inflight
                           if not pending[0].triggered]
            self._inflight_compact_at[partition_id] = max(
                128, 2 * len(inflight))
        inflight.append((event, program))
        if self._migrations:
            self._register_dual_writes(partition_id, program, event)
        return event

    def submit_retrying(self, program: TransactionProgram,
                        client_index: int = 0):
        """Generator: submit with wrong-epoch retries (live-migration safe).

        Re-routes the program against a fresh snapshot when a fenced range
        refuses it or the 2PC coordinator aborts it with
        ``xpartition-wrong-epoch``; returns the final outcome.  A partition
        with no live servers still raises ``RuntimeError`` synchronously,
        exactly like :meth:`submit`.
        """
        attempt = 0
        while True:
            backoff = min(self.WRONG_EPOCH_RETRY_BACKOFF * (attempt + 1),
                          self.WRONG_EPOCH_MAX_BACKOFF)
            try:
                event = self.submit(program, client_index=client_index)
            except WrongEpochError:
                attempt += 1
                self.router.wrong_epoch_retries += 1
                if attempt > self.WRONG_EPOCH_MAX_RETRIES:
                    return TransactionResult(
                        txn_id=f"rejected:{program.program_id}",
                        committed=False, delegate="",
                        submitted_at=self.sim.now, responded_at=self.sim.now,
                        abort_reason="wrong-epoch")
                yield self.sim.timeout(backoff)
                continue
            outcome = yield event
            if (isinstance(outcome, CrossPartitionOutcome)
                    and outcome.abort_reason == ABORT_WRONG_EPOCH
                    and attempt < self.WRONG_EPOCH_MAX_RETRIES):
                attempt += 1
                self.router.wrong_epoch_retries += 1
                yield self.sim.timeout(backoff)
                continue
            return outcome

    def run_transaction(self, program: TransactionProgram) -> Process:
        """Submit and wrap the wait for the outcome into a process.

        A program whose owning partition has no live servers completes with
        an aborted :class:`~repro.replication.results.TransactionResult`
        (mirroring the coordinated path's unavailability abort) instead of
        raising inside the simulation; a program whose range is mid-migration
        is transparently retried against the new epoch.
        """
        def waiter():
            try:
                outcome = yield from self.submit_retrying(program)
            except RuntimeError:
                return TransactionResult(
                    txn_id=f"rejected:{program.program_id}", committed=False,
                    delegate="", submitted_at=self.sim.now,
                    responded_at=self.sim.now,
                    abort_reason="partition-unavailable")
            return outcome
        return self.sim.spawn(waiter(), name=f"client.{program.program_id}")

    # ------------------------------------------------------------------ dual writes
    def _register_dual_writes(self, partition_id: int,
                              program: TransactionProgram,
                              event: Event) -> None:
        for entry in self._migrations:
            if entry.active and entry.source_group == partition_id:
                self._register_dual_write_entry(entry, program, event)

    def _register_dual_write_entry(self, entry: _MigrationEntry,
                                   program: TransactionProgram,
                                   event: Event) -> None:
        moved = {operation.key: operation.value
                 for operation in program.operations
                 if operation.is_write and entry.key_range.contains(
                     self.routing.position_of(operation.key))}
        if moved:
            process = self.sim.spawn(
                self._forward_writes(entry, moved, event),
                name=f"migration.forward.p{entry.source_group}")
            entry.inflight.append(process)

    def _forward_writes(self, entry: _MigrationEntry,
                        values: Dict[str, object], event: Event):
        """Generator: mirror one committed source write onto the destination.

        Best-effort freshness only — interleavings between forwards and copy
        chunks are legal because the under-fence delta pass re-copies every
        key whose source version moved; correctness is anchored there.
        """
        result = yield event
        if not getattr(result, "committed", False) or not entry.active:
            return
        entry.report.forwarded_writes += len(values)
        yield from self._install_on_destination(entry, values)

    def _install_on_destination(self, entry: _MigrationEntry,
                                values: Dict[str, object],
                                max_attempts: int = 40):
        """Generator: install ``values`` via the destination group's own
        replication technique (update-only, so certification is a
        deterministic pass).  Returns True once committed."""
        group = self.groups[entry.destination_group]
        operations = tuple(Operation(OperationType.WRITE, key, value)
                           for key, value in values.items())
        program = TransactionProgram(
            operations=operations,
            client=f"migration.g{entry.source_group}"
                   f"->g{entry.destination_group}")
        attempt = 0
        while True:
            attempt += 1
            backoff = min(self.coordinator.retry_backoff * attempt,
                          self.coordinator.max_retry_backoff)
            up_servers = group.up_servers()
            if not up_servers:
                if attempt >= max_attempts:
                    return False
                yield self.sim.timeout(backoff)
                continue
            try:
                result = yield group.submit(program, server=up_servers[0])
            except RuntimeError:
                yield self.sim.timeout(backoff)
                continue
            self.migration_txn_ids.add(result.txn_id)
            if result.committed:
                return True
            if attempt >= max_attempts:
                return False
            yield self.sim.timeout(backoff)

    # ------------------------------------------------------------------ migration
    def migrate(self, shard, destination_group: int, chunk_size: int = 32,
                fence_timeout: float = 10_000.0,
                copy_concurrency: Optional[int] = None,
                copy_budget_tps: Optional[float] = None,
                copy_min_tps: Optional[float] = None) -> Process:
        """Start a live migration of ``shard`` to ``destination_group``.

        ``shard`` is a shard index or its exact
        :class:`~repro.partition.routing.KeyRange`.  Returns the driver
        process; run the simulation to let it finish.  The driver aborts
        (leaving the old owner authoritative) if either group loses all its
        servers or the fence drain exceeds ``fence_timeout``.

        The warm copy keeps up to ``copy_concurrency`` chunk transactions in
        flight at once (overlapping the destination group's commit latency)
        and throttles its dispatch with a token budget: chunks are issued at
        ``copy_budget_tps`` minus the recent client submit rate, floored at
        ``copy_min_tps`` so a saturated foreground cannot starve the copy.
        """
        key_range = self.routing.range_of(shard)
        source_group = self.routing.owner_of_range(key_range)
        if not 0 <= destination_group < self.partition_count:
            raise ValueError(f"unknown group {destination_group!r}")
        if destination_group == source_group:
            raise ValueError(
                f"shard {key_range!r} already lives on group "
                f"{destination_group}")
        for entry in self._migrations:
            if entry.active:
                raise RuntimeError(
                    "another migration is in flight; migrations are "
                    "serialised to keep the force-logged epoch exact")
        report = MigrationReport(
            key_range=key_range, source_group=source_group,
            destination_group=destination_group, started_at=self.sim.now)
        self.migration_reports.append(report)
        entry = _MigrationEntry(key_range=key_range,
                                source_group=source_group,
                                destination_group=destination_group,
                                report=report)
        self._migrations.append(entry)
        # Writes already in flight on the source when the migration starts
        # predate the dual-write window; register them retroactively so the
        # fence drain waits them out and their values reach the destination.
        for event, program in self._inflight_by_group[source_group]:
            if not event.triggered:
                self._register_dual_write_entry(entry, program, event)
        return self.sim.spawn(
            self._migration_driver(
                entry, chunk_size, fence_timeout,
                copy_concurrency=(copy_concurrency
                                  if copy_concurrency is not None
                                  else self.DEFAULT_COPY_CONCURRENCY),
                copy_budget_tps=(copy_budget_tps
                                 if copy_budget_tps is not None
                                 else self.DEFAULT_COPY_BUDGET_TPS),
                copy_min_tps=(copy_min_tps if copy_min_tps is not None
                              else self.DEFAULT_COPY_MIN_TPS)),
            name=f"migration.{key_range!r}"
                 f".g{source_group}->g{destination_group}")

    def _copy_chunk(self, entry: _MigrationEntry, chunk: List[str],
                    versions_seen: Dict[str, int]):
        """Generator: read one chunk on the source, install on the destination.

        Returns None on success, else the abort reason.  Several of these run
        concurrently (up to the driver's ``copy_concurrency``); the shared
        ``versions_seen`` map records each key's source version *before* its
        install, so the under-fence delta pass re-copies anything that moved.
        """
        source = self.groups[entry.source_group]
        up_servers = source.up_servers()
        if not up_servers:
            return "source-unavailable"
        database = source.database(up_servers[0])
        values: Dict[str, object] = {}
        try:
            for key in chunk:
                # Charge the state-transfer read on the source disk.
                yield from database.buffer.read_item(key)
                values[key] = database.value_of(key)
                versions_seen[key] = database.version_of(key)
        except Exception:
            return "source-unavailable"
        installed = yield from self._install_on_destination(entry, values)
        if not installed:
            return "destination-unavailable"
        entry.report.keys_copied += len(chunk)
        entry.report.copy_chunks += 1
        self.fire_failpoint("migration.copy-chunk", report=entry.report,
                            chunk_index=entry.report.copy_chunks)
        return None

    @staticmethod
    def _reap_copies(pending: List[Process]) -> Tuple[List[Process],
                                                      Optional[str]]:
        """Drop finished chunk processes; return (still-running, failure)."""
        failure = None
        still = []
        for process in pending:
            if not process.triggered:
                still.append(process)
            elif process.ok and process.value is not None and failure is None:
                failure = process.value
        return still, failure

    def _migration_driver(self, entry: _MigrationEntry, chunk_size: int,
                          fence_timeout: float, copy_concurrency: int,
                          copy_budget_tps: float, copy_min_tps: float):
        report = entry.report
        source = self.groups[entry.source_group]
        fenced = False
        obs = self.sim.obs
        root_span = copy_span = fence_span = None
        if obs is not None:
            root_span = obs.begin(
                "migration", category="txn", track="migration", root=True,
                labels={"source": entry.source_group,
                        "destination": entry.destination_group,
                        "range": repr(entry.key_range)})
        try:
            # -- phase 1: warm copy (dual-write forwarding already active) --
            # Up to copy_concurrency chunk transactions run in flight at
            # once, so consecutive installs overlap the destination group's
            # commit latency instead of serialising on one delegate; a token
            # bucket refilled at (budget - foreground submit rate) throttles
            # chunk dispatch so the copy yields to client traffic.
            copy_concurrency = max(1, copy_concurrency)
            report.copy_concurrency = copy_concurrency
            if not source.up_servers():
                return self._abort_migration(entry, "source-unavailable",
                                             fenced)
            delegate = source.up_servers()[0]
            # repro: allow(ordering-hazard): ItemStore.keys() is a list in creation order
            keys = [key for key in source.database(delegate).items.keys()
                    if entry.key_range.contains(self.routing.position_of(key))]
            versions_seen: Dict[str, int] = {}
            pending: List[Process] = []
            failure: Optional[str] = None
            tokens = float(copy_concurrency)
            refilled_at = self.sim.now
            if obs is not None:
                copy_span = obs.begin("migration.copy", category="protocol",
                                      track="migration", parent=root_span,
                                      labels={"keys": len(keys)})
            self.fire_failpoint("migration.copy-start", report=report)

            def refill(tokens: float, refilled_at: float):
                rate = max(copy_min_tps,
                           copy_budget_tps - self.recent_submit_rate())
                now = self.sim.now
                tokens = min(float(copy_concurrency),
                             tokens + (now - refilled_at) * rate / 1000.0)
                return tokens, now, rate

            for start in range(0, len(keys), chunk_size):
                chunk = keys[start:start + chunk_size]
                tokens, refilled_at, rate = refill(tokens, refilled_at)
                while tokens < 1.0 - 1e-6:
                    # Floor the wait so float rounding in the refill can
                    # never produce a zero-advance timeout loop.
                    wait = max((1.0 - tokens) * 1000.0 / rate, 0.1)
                    report.throttle_waits += 1
                    report.throttle_wait_ms += wait
                    yield self.sim.timeout(wait)
                    tokens, refilled_at, rate = refill(tokens, refilled_at)
                tokens = max(0.0, tokens - 1.0)
                pending, failure = self._reap_copies(pending)
                while failure is None and len(pending) >= copy_concurrency:
                    yield self.sim.any_of(pending)
                    pending, failure = self._reap_copies(pending)
                if failure is not None:
                    break
                pending.append(self.sim.spawn(
                    self._copy_chunk(entry, chunk, versions_seen),
                    name=f"migration.copy.g{entry.source_group}"
                         f"->g{entry.destination_group}.{start}"))
                report.copy_inflight_peak = max(report.copy_inflight_peak,
                                                len(pending))
            while failure is None and pending:
                yield self.sim.all_of(pending)
                pending, failure = self._reap_copies(pending)
            if failure is not None:
                for process in pending:
                    process.kill()
                return self._abort_migration(entry, failure, fenced)
            report.copy_completed_at = self.sim.now
            if obs is not None:
                obs.end(copy_span)
                copy_span = None

            # -- phase 2: fence the range and drain in-flight writers -------
            self.routing.fence(entry.key_range)
            fenced = True
            report.fence_started_at = self.sim.now
            if obs is not None:
                fence_span = obs.begin("migration.fence", category="protocol",
                                       track="migration", parent=root_span)
            self.fire_failpoint("migration.fence", report=report)
            drained = yield from self._drain_range(
                entry, deadline=self.sim.now + fence_timeout)
            if not drained:
                return self._abort_migration(entry, "fence-timeout", fenced)

            # -- phase 3: delta copy of keys written since the warm pass ----
            up_servers = source.up_servers()
            if not up_servers:
                return self._abort_migration(entry, "source-unavailable",
                                             fenced)
            database = source.database(up_servers[0])
            delta = {key: database.value_of(key) for key in keys
                     if database.version_of(key) != versions_seen.get(key)}
            if delta:
                installed = yield from self._install_on_destination(entry,
                                                                    delta)
                if not installed:
                    return self._abort_migration(
                        entry, "destination-unavailable", fenced)
                report.delta_keys_copied = len(delta)

            # -- phase 4: verify the copy under the fence -------------------
            destination = self.groups[entry.destination_group]
            if not destination.up_servers():
                return self._abort_migration(entry,
                                             "destination-unavailable",
                                             fenced)
            destination_db = destination.database(destination.up_servers()[0])
            report.verified = all(
                database.value_of(key) == destination_db.value_of(key)
                for key in keys)
            if not report.verified:
                return self._abort_migration(entry, "verification-failed",
                                             fenced)

            # -- phase 5: force-log the new map, then install it ------------
            # Write-ahead discipline: the durable EPOCH record must describe
            # the post-bump map, so it is logged on the destination (the new
            # authority) *before* the table moves.  A concurrent split/merge
            # bumping the epoch during the flush re-logs with fresh numbers.
            while True:
                payload = self.routing.payload_after_migrate(
                    entry.key_range, entry.destination_group)
                logged = yield from self._force_log_epoch(destination_db,
                                                          payload)
                if not logged:
                    return self._abort_migration(
                        entry, "destination-unavailable", fenced)
                if self.routing.epoch + 1 == payload["epoch"]:
                    break
            self.fire_failpoint("migration.epoch-logged", report=report,
                                epoch=payload["epoch"])
            if obs is not None:
                obs.instant("migration.epoch-logged", track="migration",
                            labels={"epoch": payload["epoch"]})
            if source.up_servers():
                # Advisory copy on the old owner (flushed with its next
                # group commit); recovery takes the max epoch anywhere.
                source.database(source.up_servers()[0]).wal.append_epoch(
                    payload["epoch"], payload)
            self.routing.unfence(entry.key_range)
            fenced = False
            if obs is not None:
                obs.end(fence_span)
                fence_span = None
            report.epoch = self.routing.migrate(entry.key_range,
                                                entry.destination_group)
            report.completed_at = self.sim.now
            return report
        finally:
            if fenced:
                self.routing.unfence(entry.key_range)
            if obs is not None:
                # An aborted or crashed driver leaves phase spans open; close
                # them here so the exported trace never dangles (obs.end is
                # idempotent, so the success path above is unaffected).
                if copy_span is not None:
                    obs.end(copy_span)
                if fence_span is not None:
                    obs.end(fence_span)
                obs.end(root_span,
                        labels={"aborted": report.aborted,
                                "abort_reason": report.abort_reason or ""})
            entry.active = False
            if entry in self._migrations:
                self._migrations.remove(entry)

    def _abort_migration(self, entry: _MigrationEntry, reason: str,
                         fenced: bool) -> MigrationReport:
        """Cancel a migration, leaving the old owner authoritative.

        Safe at any point before the epoch bump: the destination's copy of
        the range is unreachable garbage (nothing routes there), and the
        fence — if it was up — is lifted so the source serves again.
        """
        report = entry.report
        report.aborted = True
        report.abort_reason = reason
        if fenced:
            self.routing.unfence(entry.key_range)
        return report

    def _drain_range(self, entry: _MigrationEntry, deadline: float):
        """Generator: wait out every writer that can still land in the range.

        Two populations: the dual-write forward processes registered by
        :meth:`submit_to_group`, and decided 2PC transactions whose phase-2
        branch installs touch the range (``coordinator.active_installs`` —
        decided writes cannot be refused, so the range cannot move until
        they are durable).  Returns False if the deadline passes first.
        """
        while True:
            entry.inflight = [process for process in entry.inflight
                              if not process.triggered]
            busy = bool(entry.inflight) or self._pending_installs_touch(entry)
            if not busy:
                return True
            if self.sim.now >= deadline:
                return False
            yield self.sim.timeout(1.0)

    def _pending_installs_touch(self, entry: _MigrationEntry) -> bool:
        # repro: allow(ordering-hazard): any-overlap boolean scan, order-free
        for keys in self.coordinator.active_installs.values():
            for key in keys:
                if entry.key_range.contains(self.routing.position_of(key)):
                    return True
        return False

    def _force_log_epoch(self, database, payload):
        """Generator: force the EPOCH record to stable storage (True on ok).

        Durability is judged by evidence
        (:meth:`~repro.db.wal.WriteAheadLog.force`) — the record must be on
        stable storage afterwards.  A delegate that crashed before or
        during the flush (its volatile WAL tail dies with it) reads as
        failure, so a migration can never install a map whose EPOCH record
        only ever "flushed" on a dead server.
        """
        if database.wal.node.is_crashed:
            return False
        record = database.wal.append_epoch(payload["epoch"], payload)
        return (yield from database.wal.force(record))

    # ------------------------------------------------------------------ reshaping
    def split_shard(self, shard, at: Optional[int] = None) -> int:
        """Split one shard in two (metadata only; same owner, no data moves).

        ``at`` defaults to the access-weighted median when load has been
        observed, else the midpoint — the skew-aware boundary that cuts a
        hot Zipf head in half.  Returns the new epoch.
        """
        key_range = self.routing.range_of(shard)
        owner = self.routing.owner_of_range(key_range)
        if at is None:
            at = self.routing.hot_split_position(key_range)
        epoch = self.routing.split(key_range, at=at)
        self._log_epoch_advisory(owner)
        return epoch

    def merge_shards(self, left_shard) -> int:
        """Merge one shard with its right neighbour (same owner only)."""
        key_range = self.routing.range_of(left_shard)
        owner = self.routing.owner_of_range(key_range)
        epoch = self.routing.merge(key_range)
        self._log_epoch_advisory(owner)
        return epoch

    def _log_epoch_advisory(self, group_id: int) -> None:
        """Append (not force) the current map on one delegate's WAL.

        Split and merge do not change ownership, so recovering the previous
        epoch's map routes identically; the record rides the delegate's next
        group commit instead of paying a forced flush.
        """
        group = self.groups[group_id]
        up_servers = group.up_servers()
        if up_servers:
            group.database(up_servers[0]).wal.append_epoch(
                self.routing.epoch, self.routing.as_payload())

    def rebalance(self, shard: Optional[int] = None,
                  destination_group: Optional[int] = None,
                  copy_concurrency: Optional[int] = None,
                  copy_budget_tps: Optional[float] = None,
                  copy_min_tps: Optional[float] = None) -> Process:
        """Move (half of) the hottest shard to the least-loaded group.

        The shard with the most observed accesses is split at its
        access-weighted median (so each side carries about half the load)
        and the hot head is migrated — live, under traffic — to the coolest
        group.  Returns the migration driver process.  With windowed access
        decay enabled (or a :class:`~repro.partition.controller.
        RebalanceController` rolling windows), "hottest" and "coolest"
        reflect recent load rather than all-time totals.
        """
        index = shard if shard is not None else self.routing.hottest_shard()
        key_range = self.routing.range_of(index)
        source = self.routing.owner_of_range(key_range)
        destination = (destination_group if destination_group is not None
                       else self.routing.coolest_group(exclude=[source]))
        if key_range.width >= 2:
            self.split_shard(key_range)
            # The low half (the head of the range — the Zipf hot set) keeps
            # the original index; migrate that one.
            key_range = self.routing.range_of(index)
        return self.migrate(key_range, destination,
                            copy_concurrency=copy_concurrency,
                            copy_budget_tps=copy_budget_tps,
                            copy_min_tps=copy_min_tps)

    # ------------------------------------------------------------------ failures
    def crash_server(self, partition_id: int, server: str) -> None:
        """Crash one server of one partition's group."""
        self.crash_log.append(CrashEvent(at=self.sim.now, kind="crash",
                                         partition_id=partition_id,
                                         server=server))
        obs = self.sim.obs
        if obs is not None:
            obs.instant("crash.server", track="faults",
                        labels={"partition": partition_id, "server": server})
        self.groups[partition_id].crash_server(server)

    def crash_partition(self, partition_id: int) -> None:
        """Crash every server of one partition (shard-wide outage)."""
        self.crash_log.append(CrashEvent(at=self.sim.now, kind="crash",
                                         partition_id=partition_id))
        obs = self.sim.obs
        if obs is not None:
            obs.instant("crash.partition", track="faults",
                        labels={"partition": partition_id})
        self.groups[partition_id].crash_all()

    def recover_server(self, partition_id: int, server: str) -> Process:
        """Recover one server, then replay force-logged 2PC decisions on it.

        The replay pass resumes phase 2 of every durable decision whose
        branches were left unfinished (the coordinator died with this
        delegate), resolving in-doubt branches and finally answering the
        blocked clients.
        """
        self.crash_log.append(CrashEvent(at=self.sim.now, kind="recover",
                                         partition_id=partition_id,
                                         server=server))
        obs = self.sim.obs
        if obs is not None:
            obs.instant("recover.server", track="faults",
                        labels={"partition": partition_id, "server": server})
        group_recovery = self.groups[partition_id].recover_server(server)

        def recovery():
            yield group_recovery
            self.coordinator.replay_decisions(partition_id, server)
            return group_recovery.value
        return self.sim.spawn(recovery(),
                              name=f"recover.p{partition_id}.{server}")

    def up_partitions(self) -> List[int]:
        """Ids of partitions with at least one server up."""
        return [partition_id for partition_id, group in enumerate(self.groups)
                if group.up_servers()]

    # ------------------------------------------------------------------ recovery
    def stable_log_records(self) -> List[LogRecord]:
        """Every durable WAL record across every server of every group."""
        records: List[LogRecord] = []
        for group in self.groups:
            for name in group.server_names():
                records.extend(group.database(name).wal.stable_records())
        return records

    def recovered_routing(self) -> RoutingTable:
        """The ownership map a *restarted* cluster would recover and serve.

        Rebuilt purely from stable storage: the highest force-logged EPOCH
        record wins, falling back to the epoch-0 strategy layout.  This is
        the crash-consistency contract of live migration — before the bump
        record is durable the old owner serves, after it the new one.
        """
        return RoutingTable.recover(
            self.stable_log_records(), strategy=self.strategy,
            group_count=self.partition_count,
            item_count=self.params.item_count)

    # ------------------------------------------------------------------ results
    def all_single_partition_results(self) -> List:
        """Fast-path results across all groups, in response order.

        Excludes the internal update-only transactions of the
        cross-partition coordinator (2PC branch installs) and of the
        migration machinery (copy chunks and forwarded dual-writes) — those
        are infrastructure work, not client-visible fast-path results.
        """
        internal = self.coordinator.branch_txn_ids | self.migration_txn_ids
        results = []
        for group in self.groups:
            results.extend(result for result in group.all_results()
                           if result.txn_id not in internal)
        return sorted(results, key=lambda result: result.responded_at)

    def cross_partition_outcomes(self) -> List[CrossPartitionOutcome]:
        """Every coordinated outcome produced so far."""
        return list(self.coordinator.outcomes)

    def committed_on_partition(self, partition_id: int, txn_id: str) -> bool:
        """True if ``txn_id`` is committed on every server of the partition."""
        return self.groups[partition_id].committed_everywhere(txn_id)

    def commit_counts(self) -> Dict[int, int]:
        """Per-partition count of locally committed transactions."""
        return {
            partition_id: sum(group.database(name).committed_count
                              for name in group.server_names())
            for partition_id, group in enumerate(self.groups)}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<PartitionedCluster partitions={self.partition_count} "
                f"techniques={self.techniques} epoch={self.routing.epoch}>")
