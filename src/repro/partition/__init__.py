"""Partitioned replication: sharding the database across replica groups.

The paper studies one replica group whose throughput is capped by a single
total-order broadcast domain.  This package grows the system past that
ceiling: the keyspace is sharded across several independent groups — each
running its own group-communication system and safety technique — and a
two-phase commit coordinator provides atomicity for the transactions that
span shards.

* :mod:`~repro.partition.partitioner` — hash and range key -> partition maps;
* :mod:`~repro.partition.router` — single- vs. multi-partition classification
  and program splitting;
* :mod:`~repro.partition.coordinator` — the cross-partition atomic-commit
  protocol (2PC whose participants are replica groups);
* :mod:`~repro.partition.cluster` — the :class:`PartitionedCluster` facade;
* :mod:`~repro.partition.workload` — partition-aware workload generation and
  the open-loop load driver;
* :mod:`~repro.partition.stats` — aggregated run statistics.
"""

from .cluster import PartitionedCluster
from .coordinator import (ABORT_TIMEOUT, ABORT_UNAVAILABLE, ABORT_VALIDATION,
                          BranchOutcome, CrossPartitionCoordinator,
                          CrossPartitionOutcome)
from .partitioner import (STRATEGIES, HashPartitioner, Partitioner,
                          RangePartitioner, make_partitioner)
from .router import TransactionRouter
from .stats import (PartitionedRunStatistics, collect_statistics,
                    render_partition_table)
from .workload import PartitionedOpenLoopClients, PartitionedWorkloadGenerator

__all__ = [
    "PartitionedCluster",
    "CrossPartitionCoordinator",
    "CrossPartitionOutcome",
    "BranchOutcome",
    "ABORT_VALIDATION",
    "ABORT_TIMEOUT",
    "ABORT_UNAVAILABLE",
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "make_partitioner",
    "STRATEGIES",
    "TransactionRouter",
    "PartitionedWorkloadGenerator",
    "PartitionedOpenLoopClients",
    "PartitionedRunStatistics",
    "collect_statistics",
    "render_partition_table",
]
