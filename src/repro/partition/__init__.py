"""Partitioned replication: sharding the database across replica groups.

The paper studies one replica group whose throughput is capped by a single
total-order broadcast domain.  This package grows the system past that
ceiling: the keyspace is sharded across several independent groups — each
running its own group-communication system and safety technique — a
two-phase commit coordinator provides atomicity for the transactions that
span shards, and an **epoch-versioned routing table** makes ownership live
state: shards split, merge and migrate between groups while the load
drivers keep submitting.

* :mod:`~repro.partition.routing` — the epoch-versioned ownership map:
  key-range -> group assignments, split/merge/migrate, fences,
  WAL-recoverable epoch bumps (``RoutingTable.from_strategy`` builds the
  static hash/range layouts the retired partitioner shims used to provide);
* :mod:`~repro.partition.router` — snapshot-based single- vs.
  multi-partition classification and program splitting;
* :mod:`~repro.partition.coordinator` — the cross-partition atomic-commit
  protocol (2PC whose participants are replica groups, with branch-epoch
  validation and crash-recovery decision replay);
* :mod:`~repro.partition.cluster` — the :class:`PartitionedCluster` facade,
  including the live-migration driver (overlapped, throttled copy) and the
  :meth:`~repro.partition.cluster.PartitionedCluster.rebalance` entry point;
* :mod:`~repro.partition.controller` — the autobalance
  :class:`RebalanceController`: windowed load watching, thresholds,
  cooldowns and hysteresis driving ``rebalance()`` with no operator;
* :mod:`~repro.partition.workload` — partition-aware workload generation and
  the open- and closed-loop load drivers;
* :mod:`~repro.partition.stats` — aggregated run statistics.
"""

from .cluster import MigrationReport, PartitionedCluster
from .controller import ControllerStats, RebalanceController
from .coordinator import (ABORT_TIMEOUT, ABORT_UNAVAILABLE, ABORT_VALIDATION,
                          ABORT_WRONG_EPOCH, BranchOutcome,
                          CrossPartitionCoordinator, CrossPartitionOutcome)
from .router import TransactionRouter
from .routing import (STRATEGIES, KeyRange, RoutingSnapshot, RoutingTable,
                      ShardAssignment, WrongEpochError, position_of_key)
from .stats import (PartitionedRunStatistics, collect_statistics,
                    render_partition_table)
from .workload import (PartitionedClosedLoopClients, PartitionedOpenLoopClients,
                       PartitionedWorkloadGenerator)

__all__ = [
    "PartitionedCluster",
    "MigrationReport",
    "RebalanceController",
    "ControllerStats",
    "CrossPartitionCoordinator",
    "CrossPartitionOutcome",
    "BranchOutcome",
    "ABORT_VALIDATION",
    "ABORT_TIMEOUT",
    "ABORT_UNAVAILABLE",
    "ABORT_WRONG_EPOCH",
    "RoutingTable",
    "RoutingSnapshot",
    "ShardAssignment",
    "KeyRange",
    "WrongEpochError",
    "position_of_key",
    "STRATEGIES",
    "TransactionRouter",
    "PartitionedWorkloadGenerator",
    "PartitionedOpenLoopClients",
    "PartitionedClosedLoopClients",
    "PartitionedRunStatistics",
    "collect_statistics",
    "render_partition_table",
]
