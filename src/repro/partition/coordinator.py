"""Atomic commitment of cross-partition transactions (2PC over replica groups).

A transaction spanning several partitions must commit on *all* of them or on
*none* — atomicity across shards, on top of whatever safety level each shard's
replica group provides.  The :class:`CrossPartitionCoordinator` implements a
two-phase commit whose participants are whole replica groups, not single
servers:

1. **Prepare.**  Each branch executes its read phase on a delegate of the
   owning group (optimistic, no locks — the same deferred-update discipline as
   the database state machine) and records the versions it observed.  A branch
   votes *yes* iff its delegate was reachable, the reads finished within the
   prepare timeout, the recorded versions are still current at vote
   collection (the certification test of Sect. 2.1 applied at the
   coordinator), **and** the routing snapshot the transaction was split
   against is still authoritative for the branch's keys — if a shard
   migration moved (or fenced) ownership under the transaction, the branch
   votes *no* with the ``xpartition-wrong-epoch`` reason and the submission
   path retries against the new epoch.
2. **Decision.**  The coordinator force-logs the global decision on the home
   partition's delegate (the classic 2PC forced write), then
3. **Commit.**  each branch's write set is submitted to the owning group as an
   update-only transaction through the group's *ordinary* replication
   technique.  An update-only transaction has an empty read set, so it passes
   certification deterministically on every group member; durability of each
   branch is therefore exactly the group's own guarantee — group-safe branches
   are entrusted to the group, 2-safe branches are logged everywhere, 1-safe
   branches are logged on the branch delegate.  Safety composes instead of
   being reimplemented.

If any branch votes *no*, nothing was installed anywhere (prepare stages
writes without applying them), so abort is simply a matter of answering the
client — all-or-nothing holds trivially.  On the commit path a branch that
aborts locally for transient reasons (a deadlock between two commit branches
on a lazy partition, a delegate crash) is retried, possibly on another member
of the group: once the decision is logged, participants must get to commit.

**Coordinator crash and decision replay.**  The coordinator is co-located
with the home partition's delegate (the server its forced decision record
lives on).  If that delegate crashes after the decision is durable but
before every branch is installed, the coordinator *dies with it*: phase 2
halts and the client blocks — the classic 2PC blocked state.  When the home
delegate recovers, :meth:`replay_decisions` scans its stable log for
``DECISION`` records and resumes phase 2 for every decided-but-unfinished
transaction, finally answering the client.  A decision record whose
transaction was already reported aborted to the client (the flush raced the
coordinator's bounded decision wait) is counted as an *orphan decision* and
reconciled in favour of the client-visible abort — nothing was installed
during prepare, so the abort answer was truthful.

**Isolation caveat.**  The coordinator guarantees *atomicity* (all-or-nothing
across partitions) and per-branch durability at each group's safety level —
not global serialisability.  The validation window closes at vote collection:
between the vote and the branch's installation in its group's total order, a
concurrent conflicting transaction can commit, in which case the branch's
blind writes overwrite it (a lost-update anomaly the single-group
certification discipline would have aborted).  Making commit infallible after
the decision — the essence of 2PC — is fundamentally in tension with
re-certifying at install time; closing the window would need prepare-time
locks that the certification-based techniques do not take for their own
transactions.  This mirrors the anomaly budget the paper itself tolerates for
lazy replication (Sect. 7) and is measured, not hidden: validation aborts and
the cross-partition abort rate are reported by the statistics module.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..db.operations import Operation, OperationType, TransactionProgram
from ..db.transaction import Transaction
from ..db.wal import LogRecordType
from ..obs.metrics import MetricsRegistry
from ..sim.events import Event

#: Abort reasons the coordinator can produce.
ABORT_VALIDATION = "xpartition-validation"
ABORT_TIMEOUT = "xpartition-prepare-timeout"
ABORT_UNAVAILABLE = "xpartition-unavailable"
ABORT_WRONG_EPOCH = "xpartition-wrong-epoch"


@dataclass
class BranchOutcome:
    """What happened to one partition's branch of a cross-partition transaction."""

    partition_id: int
    delegate: str
    voted_yes: bool = False
    #: Transaction id of the committed update-only branch on its partition
    #: (None for read-only branches and for aborted transactions).
    txn_id: Optional[str] = None
    committed: bool = False
    abort_reason: Optional[str] = None
    #: True while the global decision is *commit* but this branch's whole
    #: group is down — the classic blocked-participant state of 2PC.  The
    #: branch's writes are installed when the group recovers, never dropped.
    in_doubt: bool = False


@dataclass
class CrossPartitionOutcome:
    """Client-visible outcome of one cross-partition transaction."""

    xid: str
    committed: bool
    submitted_at: float
    responded_at: float
    partitions: Tuple[int, ...]
    abort_reason: Optional[str] = None
    branches: List[BranchOutcome] = field(default_factory=list)
    client: str = "client"

    @property
    def in_doubt(self) -> bool:
        """True while some decided branch is blocked on a crashed group."""
        return any(branch.in_doubt for branch in self.branches)

    @property
    def response_time(self) -> float:
        """Client-observed response time in milliseconds."""
        return self.responded_at - self.submitted_at

    def branch(self, partition_id: int) -> BranchOutcome:
        """The branch outcome for ``partition_id``."""
        for branch in self.branches:
            if branch.partition_id == partition_id:
                return branch
        raise KeyError(partition_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        verdict = "commit" if self.committed else f"abort({self.abort_reason})"
        return (f"<CrossPartitionOutcome {self.xid} {verdict} "
                f"partitions={self.partitions} rt={self.response_time:.1f}ms>")


@dataclass
class _PendingDecision:
    """A decided transaction whose phase 2 has not finished yet.

    Registered the moment the decision record is durable and removed when
    the client is answered; this is the state :meth:`CrossPartitionCoordinator.
    replay_decisions` resumes from after a home-delegate crash.
    """

    xid: str
    outcome: CrossPartitionOutcome
    transactions: Dict[int, Transaction]
    delegates: Dict[int, str]
    response_event: Event
    #: True once a replay pass took ownership of finishing phase 2 (the
    #: original, possibly still-scheduled, commit branches stand down).
    resuming: bool = False


class CrossPartitionCoordinator:
    """Two-phase commit across the replica groups of a partitioned cluster."""

    def __init__(self, cluster, prepare_timeout: float = 2_000.0,
                 retry_backoff: float = 5.0,
                 max_retry_backoff: float = 250.0) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.prepare_timeout = prepare_timeout
        self.retry_backoff = retry_backoff
        self.max_retry_backoff = max_retry_backoff
        self._ids = itertools.count(1)
        #: Every cross-partition outcome produced so far, in response order.
        self.outcomes: List[CrossPartitionOutcome] = []
        # Statistics live on the cluster's metrics registry (a private one
        # when the coordinator is built against a bare test double); the
        # properties below keep the historical attribute API.
        metrics = getattr(cluster, "metrics", None)
        if metrics is None:
            metrics = MetricsRegistry()
        self.metrics = metrics
        self._committed = metrics.counter("xp_terminated", component="2pc",
                                          outcome="committed")
        self._aborted = metrics.counter("xp_terminated", component="2pc",
                                        outcome="aborted")
        self._abort_reasons = {
            reason: metrics.counter("xp_aborts", component="2pc",
                                    reason=reason.replace("xpartition-", ""))
            for reason in (ABORT_VALIDATION, ABORT_TIMEOUT,
                           ABORT_UNAVAILABLE, ABORT_WRONG_EPOCH)}
        self._orphan_decisions = metrics.counter("xp_orphan_decisions",
                                                 component="2pc")
        self._in_doubt = metrics.gauge("xp_in_doubt_branches",
                                       component="2pc")
        #: Transaction ids of every committed phase-2 branch install, so the
        #: cluster can separate internal 2PC work from client fast-path
        #: results.
        self.branch_txn_ids: set = set()
        #: xid -> write keys of transactions between vote collection and the
        #: end of phase 2.  A live migration's fence drain waits for the
        #: entries touching its range: once a transaction is decided its
        #: branch installs *will* land on the (still-)owning group, so the
        #: range cannot move until they have.
        self.active_installs: Dict[str, frozenset] = {}
        #: xid -> decided-but-unfinished state for decision replay.
        self.decided_pending: Dict[str, _PendingDecision] = {}
        self._orphan_xids: set = set()

    # ------------------------------------------------------------------ statistics
    @property
    def committed_count(self) -> int:
        """Cross-partition transactions that committed on every branch."""
        return self._committed.value

    @property
    def aborted_count(self) -> int:
        """Cross-partition transactions that aborted."""
        return self._aborted.value

    @property
    def validation_aborts(self) -> int:
        """Aborts due to version validation at vote collection."""
        return self._abort_reasons[ABORT_VALIDATION].value

    @property
    def timeout_aborts(self) -> int:
        """Aborts due to a prepare (or decision-flush) timeout."""
        return self._abort_reasons[ABORT_TIMEOUT].value

    @property
    def unavailable_aborts(self) -> int:
        """Aborts because a whole branch group was unreachable."""
        return self._abort_reasons[ABORT_UNAVAILABLE].value

    @property
    def wrong_epoch_aborts(self) -> int:
        """Aborts because routing moved under the transaction."""
        return self._abort_reasons[ABORT_WRONG_EPOCH].value

    @property
    def orphan_decisions(self) -> int:
        """Durable decisions found on recovery whose client was already
        answered with an abort (the flush outran the bounded decision wait);
        reconciled in favour of the abort."""
        return self._orphan_decisions.value

    @property
    def in_doubt_branches(self) -> int:
        """Number of decided branches currently blocked on a crashed group."""
        return self._in_doubt.value

    # ------------------------------------------------------------------ submission
    def submit(self, program: TransactionProgram, client_index: int = 0,
               snapshot=None) -> Event:
        """Run 2PC for ``program``; the event fires with the outcome.

        ``snapshot`` is the routing view the caller classified the program
        against; branch epochs are validated against it in phase 1.
        """
        response_event = Event(self.sim)
        xid = f"xp-{next(self._ids)}"
        if snapshot is None:
            snapshot = self.cluster.router.snapshot()
        obs = self.sim.obs
        if obs is not None:
            # Root of the 2PC span tree; _run spawns with zero delay, so the
            # root's start equals the outcome's submitted_at and its duration
            # equals the client-observed response time exactly.
            obs.begin("2pc", category="txn", track="coordinator",
                      key=("xp", xid), root=True,
                      labels={"txn_id": xid, "client": program.client})
        self.sim.spawn(self._run(program, xid, response_event, client_index,
                                 snapshot),
                       name=f"xp.coordinator.{xid}")
        return response_event

    # ------------------------------------------------------------------ protocol
    def _run(self, program: TransactionProgram, xid: str,
             response_event: Event, client_index: int, snapshot):
        submitted_at = self.sim.now
        branches = self.cluster.router.split(program, snapshot=snapshot)
        partitions = tuple(sorted(branches))
        outcome = CrossPartitionOutcome(
            xid=xid, committed=False, submitted_at=submitted_at,
            responded_at=submitted_at, partitions=partitions,
            client=program.client)

        # Pick one delegate per involved partition (the group's own routing).
        delegates: Dict[int, str] = {}
        for partition_id in partitions:
            group = self.cluster.group(partition_id)
            if not group.up_servers():
                outcome.branches = [
                    BranchOutcome(partition_id=pid, delegate="")
                    for pid in partitions]
                self._finish(outcome, ABORT_UNAVAILABLE, response_event)
                return
            delegates[partition_id] = group.choose_delegate(client_index)
        outcome.branches = [
            BranchOutcome(partition_id=pid, delegate=delegates[pid])
            for pid in partitions]

        # -- phase 1: prepare every branch in parallel ----------------------
        prepare_procs = {
            partition_id: self.sim.spawn(
                self._prepare(partition_id, delegates[partition_id],
                              branches[partition_id], xid),
                name=f"xp.prepare.{xid}.p{partition_id}")
            for partition_id in partitions}
        timeout = self.sim.timeout(self.prepare_timeout)
        yield self.sim.any_of(
            # repro: allow(ordering-hazard): insertion order is the sorted partition order
            [self.sim.all_of(list(prepare_procs.values())), timeout])

        timed_out = False
        transactions: Dict[int, Transaction] = {}
        for partition_id, process in prepare_procs.items():
            branch_outcome = outcome.branch(partition_id)
            if not process.triggered:
                # The branch delegate crashed (or stalled) mid-prepare; its
                # read events will never fire.  Vote no.
                timed_out = True
                branch_outcome.abort_reason = ABORT_TIMEOUT
                continue
            transaction = process.value
            if transaction is None:
                branch_outcome.abort_reason = ABORT_UNAVAILABLE
                continue
            transactions[partition_id] = transaction
            branch_outcome.voted_yes = True

        # -- vote collection: re-validate the observed versions -------------
        if len(transactions) == len(partitions):
            for partition_id, transaction in transactions.items():
                database = self.cluster.group(partition_id).database(
                    delegates[partition_id])
                if not database.certify(transaction.certification_payload()):
                    branch_outcome = outcome.branch(partition_id)
                    branch_outcome.voted_yes = False
                    branch_outcome.abort_reason = ABORT_VALIDATION

        # -- vote collection: re-validate the routing epoch ------------------
        # A shard migration may have moved (or fenced) ownership of a
        # branch's keys between the split and this point; committing the
        # branch to the snapshot's group would install writes the new owner
        # never sees.  Such branches vote no and the submitter retries
        # against the current epoch.
        for partition_id in partitions:
            branch_outcome = outcome.branch(partition_id)
            if not branch_outcome.voted_yes:
                continue
            keys = [operation.key
                    for operation in branches[partition_id].operations]
            if (not self.cluster.router.snapshot_is_current(keys, snapshot)
                    or self.cluster.routing_fenced(keys)):
                branch_outcome.voted_yes = False
                branch_outcome.abort_reason = ABORT_WRONG_EPOCH

        obs = self.sim.obs
        if obs is not None:
            obs.instant("2pc.vote", track="coordinator",
                        labels={"xid": xid,
                                "all_yes": all(branch.voted_yes
                                               for branch in outcome.branches),
                                "partitions": len(partitions)})
        all_yes = all(branch.voted_yes for branch in outcome.branches)
        if not all_yes:
            if timed_out:
                reason = ABORT_TIMEOUT
            elif any(branch.abort_reason == ABORT_UNAVAILABLE
                     for branch in outcome.branches):
                reason = ABORT_UNAVAILABLE
            elif any(branch.abort_reason == ABORT_WRONG_EPOCH
                     for branch in outcome.branches):
                reason = ABORT_WRONG_EPOCH
            else:
                reason = ABORT_VALIDATION
            # Nothing was installed during prepare, so aborting everywhere is
            # just a matter of answering the client.
            self._finish(outcome, reason, response_event)
            return

        # -- decision: force-log it on the home partition's delegate --------
        # The flush is bounded like the prepare phase: if the home delegate
        # crashes, its queued resource requests are silently cancelled (no
        # exception reaches a sim-spawned process), so an unbounded wait
        # would hang the client forever.  On timeout no branch has installed
        # anything yet, so aborting everywhere is safe.
        home = partitions[0]
        self.cluster.fire_failpoint("2pc.prepared", xid=xid, home=home,
                                    delegates=dict(delegates))
        home_node = self.cluster.group(home).node(delegates[home])
        home_db = self.cluster.group(home).database(delegates[home])
        self.active_installs[xid] = frozenset(
            key for transaction in transactions.values()
            for key in transaction.write_values)
        decision_span = None
        if obs is not None:
            decision_span = obs.begin("2pc.decision-log", category="disk",
                                      track="coordinator",
                                      parent=("xp", xid),
                                      labels={"home": delegates[home]})
        decision_process = self.sim.spawn(
            self._log_decision(home_db, xid),
            name=f"xp.decision.{xid}")
        yield self.sim.any_of(
            [decision_process, self.sim.timeout(self.prepare_timeout)])
        if decision_span is not None:
            obs.end(decision_span,
                    labels={"durable": decision_process.triggered
                            and decision_process.value is True})
        if not decision_process.triggered or decision_process.value is not True:
            self._finish(outcome, ABORT_UNAVAILABLE, response_event)
            return

        # The decision is durable: from here on the transaction *will*
        # commit, even across a crash of the coordinator itself (which is
        # co-located with the home delegate) — replay_decisions resumes the
        # registered pending state when the delegate recovers.
        self.decided_pending[xid] = _PendingDecision(
            xid=xid, outcome=outcome, transactions=transactions,
            delegates=dict(delegates), response_event=response_event)
        self.cluster.fire_failpoint("2pc.decided", xid=xid, home=home,
                                    delegates=dict(delegates))

        # -- phase 2: make every write branch durable via its group ---------
        commit_procs = []
        for partition_id in partitions:
            transaction = transactions[partition_id]
            if not transaction.write_values:
                # Read-only branch: it voted, there is nothing to install.
                outcome.branch(partition_id).committed = True
                continue
            commit_procs.append(self.sim.spawn(
                self._commit_branch(partition_id, delegates[partition_id],
                                    transaction, xid,
                                    outcome.branch(partition_id),
                                    home_node=home_node),
                name=f"xp.commit.{xid}.p{partition_id}"))
        if commit_procs:
            yield self.sim.all_of(commit_procs)

        pending = self.decided_pending.get(xid)
        if pending is None or pending.resuming:
            # A recovery replay took the transaction over (and may already
            # have finished it — the pending entry is popped by _finish);
            # standing down here is what keeps the outcome from being
            # recorded twice.
            return
        if (not all(branch.committed for branch in outcome.branches)
                and home_node.is_crashed):
            # The coordinator died with its home delegate mid-phase-2.  The
            # decision is durable and registered; replay finishes the job
            # (and answers the client) when the delegate recovers.
            return
        self._finish(outcome, None, response_event)

    def _log_decision(self, home_db, xid: str):
        """Generator: force-write the 2PC decision record (True on success).

        The record has its own WAL type (not COMMIT), so recovery redo, the
        safety audit and ``committed_transactions()`` never mistake it for a
        transaction.  If the coordinator times this flush out and aborts, a
        straggling decision record may still become durable later;
        :meth:`replay_decisions` reconciles it with the client-visible abort
        (counted as an orphan decision).

        Success is judged by *evidence*, not by the flush returning
        (:meth:`~repro.db.wal.WriteAheadLog.force`): the record must
        actually be on stable storage afterwards.  A crash of the home
        delegate between the votes and this flush (or mid-flush — the
        volatile tail dies with the node) therefore reads as a failed
        decision, never as a phantom forced write on a dead server.
        """
        if home_db.wal.node.is_crashed:
            return False
        record = home_db.wal.append_decision(xid)
        return (yield from home_db.wal.force(record))

    def _prepare(self, partition_id: int, delegate: str,
                 branch: TransactionProgram, xid: str):
        """Generator: execute the branch's read phase on its delegate."""
        obs = self.sim.obs
        span = None
        if obs is not None:
            # Also registered under the branch's transaction id so the
            # delegate-side db.read spans nest under the prepare span.
            span = obs.begin("2pc.prepare", category="protocol",
                             track="coordinator", parent=("xp", xid),
                             key=("txn", f"{xid}.p{partition_id}"),
                             labels={"partition": partition_id,
                                     "delegate": delegate})
        try:
            group = self.cluster.group(partition_id)
            if not group.node(delegate).is_up:
                return None
            database = group.database(delegate)
            transaction = database.begin(branch, delegate=delegate,
                                         txn_id=f"{xid}.p{partition_id}")
            try:
                for operation in branch.operations:
                    if operation.is_read:
                        yield from database.read(transaction, operation.key,
                                                 use_lock=False)
                    else:
                        database.stage_write(transaction, operation.key,
                                             operation.value)
            except Exception:
                # Any local failure during prepare is simply a no-vote;
                # raising here would tear down the coordinator instead of
                # aborting.
                return None
            return transaction
        finally:
            if span is not None:
                obs.end(span)

    def _commit_branch(self, partition_id: int, delegate: str,
                       transaction: Transaction, xid: str,
                       branch_outcome: BranchOutcome,
                       home_node=None):
        """Generator: drive the branch's write set to commit on its group.

        The global decision is already logged, so this *must* succeed: local
        aborts (deadlocks between concurrent commit branches on a lazy
        partition, delegate crashes) are retried, switching to another group
        member when the delegate is down, and a whole-group outage blocks the
        branch until a member recovers — the classic blocking behaviour of
        2PC.  Decided writes are never dropped; the client response is simply
        delayed until every branch is durable.  The update-only program is
        idempotent — it installs the same values on every attempt — so an
        at-least-once retry cannot violate atomicity.

        ``home_node`` ties the coordinator's fate to its home delegate: if
        that node crashes the branch stands down (the coordinator is dead)
        and decision replay resumes the install on recovery.  Replay-driven
        installs pass ``home_node=None`` — they answer to nobody but the
        durable decision record.
        """
        group = self.cluster.group(partition_id)
        write_operations = tuple(
            Operation(OperationType.WRITE, key, value)
            for key, value in transaction.write_values.items())
        server = delegate
        attempt = 0
        obs = self.sim.obs
        span = None
        if obs is not None:
            span = obs.begin("2pc.commit-branch", category="protocol",
                             track="coordinator", parent=("xp", xid),
                             labels={"partition": partition_id})
        try:
            yield from self._drive_branch(
                group, partition_id, server, write_operations, transaction,
                xid, branch_outcome, home_node, attempt)
        finally:
            if span is not None:
                obs.end(span, labels={"committed": branch_outcome.committed,
                                      "in_doubt": branch_outcome.in_doubt})

    def _drive_branch(self, group, partition_id: int, server: str,
                      write_operations, transaction: Transaction, xid: str,
                      branch_outcome: BranchOutcome, home_node, attempt: int):
        """Generator: the retry loop of :meth:`_commit_branch`."""
        while True:
            if home_node is not None:
                pending = self.decided_pending.get(xid)
                if pending is not None and pending.resuming:
                    # A replay pass owns this transaction now.
                    return
                if home_node.is_crashed:
                    # The coordinator died with its home delegate; the
                    # durable decision record takes over via replay.
                    return
            attempt += 1
            backoff = min(self.retry_backoff * attempt, self.max_retry_backoff)
            if not group.node(server).is_up:
                up_servers = group.up_servers()
                if not up_servers:
                    # The whole group is down; wait for a recovery — the
                    # decision is durable, the branch is in doubt until a
                    # member comes back.
                    if not branch_outcome.in_doubt:
                        branch_outcome.in_doubt = True
                        self._in_doubt.inc()
                    yield self.sim.timeout(backoff)
                    continue
                server = up_servers[0]
            if branch_outcome.in_doubt:
                branch_outcome.in_doubt = False
                self._in_doubt.dec()
            program = TransactionProgram(operations=write_operations,
                                         client=f"xp.{xid}")
            try:
                result = yield self.cluster.submit_to_group(
                    partition_id, program, server=server)
            except RuntimeError:
                # The chosen server stopped between the check and the submit.
                yield self.sim.timeout(backoff)
                continue
            # Every attempt — including crash/deadlock aborts that will be
            # retried — is internal 2PC work, never a fast-path result.
            self.branch_txn_ids.add(result.txn_id)
            if result.committed:
                branch_outcome.committed = True
                branch_outcome.txn_id = result.txn_id
                return
            yield self.sim.timeout(backoff)

    # ------------------------------------------------------------------ decision replay
    def replay_decisions(self, partition_id: int, server: str) -> int:
        """Resume phase 2 for durable decisions found on a recovered server.

        Scans the server's stable write-ahead log for ``DECISION`` records.
        A decided-but-unfinished transaction gets its remaining branches
        re-driven to commit (resolving any in-doubt state) and its client
        finally answered; a decision whose client already saw an abort is
        counted as an orphan and left aborted — nothing was installed during
        prepare, so the abort answer was truthful.  Returns the number of
        transactions resumed.
        """
        database = self.cluster.group(partition_id).database(server)
        resumed = 0
        for record in database.wal.stable_records():
            if record.record_type is not LogRecordType.DECISION:
                continue
            xid = record.txn_id
            pending = self.decided_pending.get(xid)
            if pending is None:
                outcome = next((outcome for outcome in self.outcomes
                                if outcome.xid == xid), None)
                if (outcome is not None and not outcome.committed
                        and xid not in self._orphan_xids):
                    self._orphan_xids.add(xid)
                    self._orphan_decisions.inc()
                continue
            if pending.resuming:
                continue
            pending.resuming = True
            resumed += 1
            self.sim.spawn(self._resume_decided(pending),
                           name=f"xp.replay.{xid}")
        return resumed

    def _resume_decided(self, pending: _PendingDecision):
        """Generator: finish phase 2 of a replayed decision and answer."""
        outcome = pending.outcome
        for partition_id, transaction in pending.transactions.items():
            branch = outcome.branch(partition_id)
            if branch.committed:
                continue
            if not transaction.write_values:
                branch.committed = True
                continue
            yield from self._commit_branch(
                partition_id, pending.delegates[partition_id], transaction,
                pending.xid, branch, home_node=None)
        self._finish(outcome, None, pending.response_event)

    # ------------------------------------------------------------------ bookkeeping
    def _finish(self, outcome: CrossPartitionOutcome, reason: Optional[str],
                response_event: Event) -> None:
        self.active_installs.pop(outcome.xid, None)
        self.decided_pending.pop(outcome.xid, None)
        outcome.committed = reason is None and all(
            branch.committed for branch in outcome.branches)
        if reason is None and not outcome.committed:
            # Defensive: phase 2 retries until every branch commits, so this
            # only triggers if a branch generator is changed to give up.
            reason = next((branch.abort_reason for branch in outcome.branches
                           if branch.abort_reason), "xpartition-in-doubt")
        outcome.abort_reason = reason
        outcome.responded_at = self.sim.now
        self.outcomes.append(outcome)
        if outcome.committed:
            self._committed.inc()
        else:
            self._aborted.inc()
            reason_counter = self._abort_reasons.get(reason)
            if reason_counter is not None:
                reason_counter.inc()
        obs = self.sim.obs
        if obs is not None:
            obs.end_key(("xp", outcome.xid),
                        labels={"committed": outcome.committed,
                                "abort_reason": outcome.abort_reason or ""})
        if not response_event.triggered:
            response_event.succeed(outcome)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<CrossPartitionCoordinator committed={self.committed_count} "
                f"aborted={self.aborted_count}>")
