"""Aggregated statistics of a partitioned-cluster run.

:class:`PartitionedRunStatistics` folds the two result kinds — fast-path
:class:`~repro.replication.results.TransactionResult` and coordinated
:class:`~repro.partition.coordinator.CrossPartitionOutcome` — into one
summary, reusing :class:`~repro.replication.results.RunStatistics` for each
population so the percentile / throughput machinery stays in one place.

With the epoch-versioned routing table the summary also tracks the
*rebalancing* axis: commits bucketed by routing epoch, terminations that
happened while a migration was in flight, wrong-epoch submission retries,
and the migration reports themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..core.stats import percentile as _shared_percentile
from ..replication.results import RunStatistics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .cluster import CrashEvent, MigrationReport
    from .controller import ControllerStats
    from .workload import _PartitionedClientBase


@dataclass
class PartitionedRunStatistics:
    """One run of a partitioned cluster under load."""

    technique: str
    partition_count: int
    offered_load_tps: float = 0.0
    simulated_duration_ms: float = 0.0
    #: Fast-path (single-partition) population.
    single: RunStatistics = field(
        default_factory=lambda: RunStatistics("single-partition"))
    #: Coordinated (cross-partition) population.
    cross: RunStatistics = field(
        default_factory=lambda: RunStatistics("cross-partition"))
    #: Locally committed transactions per partition (includes the replicated
    #: copies, so it measures per-group work, not client-visible commits).
    per_partition_commits: Dict[int, int] = field(default_factory=dict)
    #: Fast-path arrivals dropped before submission because their whole
    #: partition was down.  Kept separate from ``single.measured_aborts``
    #: (which only counts transactions a server answered), so outage
    #: experiments can see the fast path's losses next to the coordinated
    #: path's unavailability aborts.
    rejected_submissions: int = 0
    #: Client-visible commits per routing epoch (at response time).
    epoch_commits: Dict[int, int] = field(default_factory=dict)
    #: Submissions re-routed after ownership moved under them.
    wrong_epoch_retries: int = 0
    #: Client-visible terminations while a migration was in flight.
    during_migration_commits: int = 0
    during_migration_aborts: int = 0
    #: Every migration the cluster ran (completed or aborted).
    migrations: List["MigrationReport"] = field(default_factory=list)
    #: The routing epoch when the statistics were collected.
    final_epoch: int = 0
    #: Autobalance controller telemetry (None when no controller ran).
    controller: Optional["ControllerStats"] = None
    #: Decay windows the routing table rolled during the run.
    windows_rolled: int = 0
    #: Injected crash / recovery events, in simulation order (failure
    #: experiments; empty for plain load runs).
    injected_crashes: List["CrashEvent"] = field(default_factory=list)
    #: Failpoint phases that fired during the run, with counts.
    failpoints_fired: Dict[str, int] = field(default_factory=dict)
    #: Serialised metrics-registry snapshot (``cluster.metrics.snapshot()``),
    #: or None for clusters without a registry.
    metrics: Optional[List[Dict[str, Any]]] = None
    #: The span tracer attached to the run's simulator (None when tracing was
    #: off), so experiment CLIs can export traces after collection.
    obs: Optional[Any] = field(default=None, repr=False)

    # -- aggregates ---------------------------------------------------------------------
    @property
    def measured_commits(self) -> int:
        """Client-visible commits of both kinds."""
        return self.single.measured_commits + self.cross.measured_commits

    @property
    def measured_aborts(self) -> int:
        """Client-visible aborts of both kinds."""
        return self.single.measured_aborts + self.cross.measured_aborts

    @property
    def achieved_throughput_tps(self) -> float:
        """Committed transactions per second of simulated time."""
        if self.simulated_duration_ms <= 0:
            return 0.0
        return self.measured_commits / (self.simulated_duration_ms / 1000.0)

    @property
    def response_times(self) -> List[float]:
        """Response times of all committed transactions."""
        return self.single.response_times + self.cross.response_times

    @property
    def mean_response_time(self) -> float:
        """Mean response time (ms) across both populations."""
        times = self.response_times
        return sum(times) / len(times) if times else 0.0

    @property
    def cross_partition_ratio(self) -> float:
        """Fraction of terminated transactions that were cross-partition."""
        total = (self.single.measured_commits + self.single.measured_aborts +
                 self.cross.measured_commits + self.cross.measured_aborts)
        if not total:
            return 0.0
        return (self.cross.measured_commits +
                self.cross.measured_aborts) / total

    @property
    def completed_migrations(self) -> List["MigrationReport"]:
        """Migrations that installed their epoch bump."""
        return [report for report in self.migrations if report.completed]

    def percentile(self, fraction: float) -> float:
        """Response-time percentile over both populations combined."""
        return _shared_percentile(self.response_times, fraction)


def collect_statistics(clients: "_PartitionedClientBase",
                       duration_ms: float) -> PartitionedRunStatistics:
    """Summarise one driven run of a partitioned cluster.

    Works for both the open-loop and the closed-loop driver (a closed-loop
    pool has no fixed offered load, so that field stays 0).
    """
    cluster = clients.cluster
    stats = PartitionedRunStatistics(
        technique="+".join(sorted(set(cluster.techniques))),
        partition_count=cluster.partition_count,
        offered_load_tps=getattr(clients, "load_tps", 0.0),
        simulated_duration_ms=duration_ms)
    # Both populations span the same measured window, so their per-population
    # achieved_throughput_tps works out of the box.
    stats.single.simulated_duration_ms = duration_ms
    stats.cross.simulated_duration_ms = duration_ms
    for result in clients.single_results:
        stats.single.record(result)
    for outcome in clients.cross_results:
        # record() only reads committed / response_time / abort_reason, all
        # of which CrossPartitionOutcome provides.
        stats.cross.record(outcome)
    stats.per_partition_commits = cluster.commit_counts()
    stats.rejected_submissions = clients.rejected_count
    stats.epoch_commits = dict(clients.epoch_commits)
    stats.wrong_epoch_retries = cluster.router.wrong_epoch_retries
    stats.during_migration_commits = clients.during_migration_commits
    stats.during_migration_aborts = clients.during_migration_aborts
    stats.migrations = list(cluster.migration_reports)
    stats.final_epoch = getattr(cluster.routing, "epoch", 0)
    controller = getattr(cluster, "controller", None)
    if controller is not None:
        stats.controller = controller.stats
    stats.windows_rolled = getattr(cluster.routing, "windows_rolled", 0)
    stats.injected_crashes = list(getattr(cluster, "crash_log", ()))
    stats.failpoints_fired = dict(getattr(cluster, "failpoints_fired", {}))
    metrics = getattr(cluster, "metrics", None)
    if metrics is not None:
        stats.metrics = metrics.snapshot()
    stats.obs = getattr(cluster.sim, "obs", None)
    return stats


def render_partition_table(rows: Sequence[PartitionedRunStatistics]) -> str:
    """Text table of a partition-count sweep (one row per run)."""
    header = (f"{'partitions':>10} | {'offered tps':>11} | "
              f"{'committed':>9} | {'tput tps':>9} | {'mean rt':>8} | "
              f"{'p95 rt':>8} | {'cross %':>7}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.partition_count:>10} | {row.offered_load_tps:>11.0f} | "
            f"{row.measured_commits:>9} | "
            f"{row.achieved_throughput_tps:>9.1f} | "
            f"{row.mean_response_time:>8.1f} | "
            f"{row.percentile(0.95):>8.1f} | "
            f"{row.cross_partition_ratio:>7.1%}")
    return "\n".join(lines)
