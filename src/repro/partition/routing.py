"""Epoch-versioned routing: the live ownership map of a partitioned cluster.

PR 1 froze the key -> replica-group mapping at cluster construction; this
module makes ownership a first-class piece of *versioned state*.  The map is
an ordered list of key-range -> group assignments stamped with an **epoch**
that is bumped by exactly three operations:

* :meth:`RoutingTable.split` — cut one shard in two (same owner, no data
  moves);
* :meth:`RoutingTable.merge` — rejoin two adjacent shards of one owner;
* :meth:`RoutingTable.migrate` — reassign a shard to another replica group.
  This is the *metadata* half only; the data movement (state-transfer copy,
  dual-write window, fence, force-logged epoch record) is driven by
  :meth:`repro.partition.cluster.PartitionedCluster.migrate`, which calls
  this method at the very end, after the new owner provably holds the data.

Routing decisions are made against an immutable :class:`RoutingSnapshot`, so
a transaction in flight keeps one consistent view while the table moves
underneath it.  When ownership did move under a transaction, the submission
path raises (or the 2PC coordinator aborts with) :class:`WrongEpochError` and
the client retries against the current epoch — the optimistic-routing
discipline of systems with movable shards.

Durability: every ownership change is serialised (:meth:`RoutingTable.
as_payload`) into an ``EPOCH`` write-ahead-log record.  A migration
force-logs the *new* map on the destination group's delegate **before**
installing it, so a crash mid-migration recovers to a consistent map:
before the record is durable the old owner still serves the range, after it
the new owner does.  :meth:`RoutingTable.recover` rebuilds the map from the
stable records of a restarted cluster.

Key positions: the table routes over an integer *position space*
``[0, slots)``.  The ``"range"`` strategy uses one slot per item (the
``item-<i>`` convention), so ranges are contiguous in the keyspace and
splits can land on skew-aware boundaries; the ``"hash"`` strategy keeps the
historical ``crc32(key) % partition_count`` placement (one slot per group),
which spreads load but makes shards indivisible (width-1 ranges cannot be
split — migrate whole slots instead).
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..db.wal import LogRecord, LogRecordType

#: Strategy names accepted by :meth:`RoutingTable.from_strategy`.
STRATEGIES = ("hash", "range")

#: Entry cap shared by the routing memo caches (key -> position / group /
#: shard).  Far above any configured item count, so in practice the caches
#: never evict; the cap only guards pathological keyspaces from growing a
#: per-key dict without bound (the same concern ``max_tracked_positions``
#: addresses for the access counters).  Eviction is a wholesale clear — the
#: caches rebuild in O(1) amortised per lookup.
MEMO_CACHE_LIMIT = 1 << 16


class WrongEpochError(RuntimeError):
    """A transaction was routed against a stale or fenced ownership map.

    Raised synchronously by the submission path when a touched range is
    fenced by a live migration, and reported as the
    ``xpartition-wrong-epoch`` abort reason when the 2PC coordinator detects
    at vote collection that ownership moved under a prepared transaction.
    The remedy is always the same: take a fresh snapshot and resubmit.
    """

    def __init__(self, message: str, epoch_seen: Optional[int] = None,
                 epoch_now: Optional[int] = None) -> None:
        super().__init__(message)
        self.epoch_seen = epoch_seen
        self.epoch_now = epoch_now


def position_of_key(key: str, slots: int, strategy: str) -> int:
    """Map ``key`` to its routing position in ``[0, slots)``.

    Range strategy: the numeric suffix of the conventional ``item-<i>`` keys
    (clamped into the slot space); keys without one fall back to a stable
    hash so the mapping stays total.  Hash strategy: ``crc32(key) % slots``,
    bit-identical to the original :class:`HashPartitioner` placement.
    """
    if strategy == "range":
        _prefix, _sep, suffix = key.rpartition("-")
        if suffix.isdigit():
            return min(int(suffix), slots - 1)
    return zlib.crc32(key.encode("utf-8")) % slots


@dataclass(frozen=True)
class KeyRange:
    """A half-open interval ``[lo, hi)`` of key positions."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi:
            raise ValueError(f"invalid key range [{self.lo}, {self.hi})")

    def contains(self, position: int) -> bool:
        """True if ``position`` falls inside the range."""
        return self.lo <= position < self.hi

    @property
    def width(self) -> int:
        """Number of positions covered."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> int:
        """The default (unweighted) split position."""
        return self.lo + self.width // 2

    def __repr__(self) -> str:
        return f"[{self.lo},{self.hi})"


@dataclass(frozen=True)
class ShardAssignment:
    """One shard of the ownership map: a key range and its owning group."""

    key_range: KeyRange
    group_id: int

    def __repr__(self) -> str:
        return f"{self.key_range}->g{self.group_id}"


class RoutingSnapshot:
    """An immutable view of the ownership map at one epoch.

    Speaks the partitioner protocol (``partition_count`` / ``partition_of``
    / ``partitions_of`` / ``partition_keys``), so everything written against
    a partitioner — the workload generator, the router, tests — works
    unchanged against a snapshot.
    """

    def __init__(self, epoch: int, assignments: Sequence[ShardAssignment],
                 slots: int, strategy: str, group_count: int,
                 position_cache: Optional[Dict[str, int]] = None) -> None:
        self.epoch = epoch
        self.assignments: Tuple[ShardAssignment, ...] = tuple(assignments)
        self.slots = slots
        self.strategy = strategy
        #: Number of replica groups (NOT shards; shards can outnumber groups
        #: after splits).  Named for the Partitioner protocol.
        self.partition_count = group_count
        self._bounds = [assignment.key_range.lo
                        for assignment in self.assignments]
        #: key -> position memo.  Positions depend only on (slots, strategy),
        #: so a :class:`RoutingTable` shares one cache across all its
        #: snapshots; a standalone snapshot gets its own.
        self._position_cache: Dict[str, int] = (
            {} if position_cache is None else position_cache)
        #: key -> owning-group memo, valid for this epoch only (per snapshot).
        self._group_cache: Dict[str, int] = {}

    # -- lookups ------------------------------------------------------------------------
    def position_of(self, key: str) -> int:
        """The routing position of ``key`` (memoized: keys never re-hash)."""
        cache = self._position_cache
        position = cache.get(key)
        if position is None:
            if len(cache) >= MEMO_CACHE_LIMIT:
                cache.clear()
            position = cache[key] = position_of_key(key, self.slots,
                                                    self.strategy)
        return position

    def shard_index_of(self, key: str) -> int:
        """Index (into :attr:`assignments`) of the shard owning ``key``."""
        return bisect_right(self._bounds, self.position_of(key)) - 1

    def shard_of(self, key: str) -> ShardAssignment:
        """The shard assignment owning ``key``."""
        return self.assignments[self.shard_index_of(key)]

    def partition_of(self, key: str) -> int:
        """Id of the replica group owning ``key`` (memoized per snapshot)."""
        cache = self._group_cache
        group_id = cache.get(key)
        if group_id is None:
            if len(cache) >= MEMO_CACHE_LIMIT:
                cache.clear()
            group_id = cache[key] = self.assignments[
                bisect_right(self._bounds, self.position_of(key)) - 1].group_id
        return group_id

    def partitions_of(self, keys: Iterable[str]) -> List[int]:
        """Sorted ids of all groups touched by ``keys``.

        The dominant caller is transaction classification, where almost
        every program touches exactly one group — that case allocates one
        single-element list and never sorts.
        """
        partition_of = self.partition_of
        first: Optional[int] = None
        extra = None
        for key in keys:
            group_id = partition_of(key)
            if group_id == first:
                continue
            if first is None:
                first = group_id
            elif extra is None:
                extra = {first, group_id}
            else:
                extra.add(group_id)
        if first is None:
            return []
        if extra is None:
            return [first]
        return sorted(extra)

    def partition_keys(self, keys: Iterable[str]) -> Dict[int, List[str]]:
        """Group ``keys`` by owning group, preserving order within each."""
        partition_of = self.partition_of
        grouped: Dict[int, List[str]] = {}
        for key in keys:
            group_id = partition_of(key)
            bucket = grouped.get(group_id)
            if bucket is None:
                grouped[group_id] = [key]
            else:
                bucket.append(key)
        return grouped

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<RoutingSnapshot epoch={self.epoch} "
                f"shards={len(self.assignments)}>")


def snapshot_of(routing) -> object:
    """The immutable routing view of ``routing``.

    A :class:`RoutingTable` yields its current :class:`RoutingSnapshot`; a
    frozen partitioner-protocol object is its own (frozen-by-construction)
    snapshot.
    """
    taker = getattr(routing, "snapshot", None)
    return taker() if callable(taker) else routing


class RoutingTable:
    """The epoch-versioned, mutable ownership map of a partitioned cluster.

    Also implements the legacy Partitioner protocol (delegating to the
    current snapshot), so it can be handed to any consumer of a partitioner.
    """

    def __init__(self, assignments: Sequence[ShardAssignment], slots: int,
                 strategy: str, group_count: int, epoch: int = 0) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown routing strategy {strategy!r}; expected one of "
                f"{STRATEGIES}")
        if group_count < 1:
            raise ValueError(f"group count must be >= 1, got {group_count!r}")
        self.slots = slots
        self.strategy = strategy
        self.group_count = group_count
        self._assignments: List[ShardAssignment] = sorted(
            assignments, key=lambda assignment: assignment.key_range.lo)
        self._validate_cover()
        self._epoch = epoch
        self._snapshot: Optional[RoutingSnapshot] = None
        #: key -> position memo shared with every snapshot of this table
        #: (positions depend only on the fixed slots/strategy pair, so the
        #: memo survives epoch bumps).
        self._position_cache: Dict[str, int] = {}
        #: Ranges currently write-fenced by a live migration.
        self._fenced: List[KeyRange] = []
        #: Per-position access counters feeding the skew-aware split points.
        #: Windowed, not cumulative: :meth:`roll_window` decays every counter
        #: by :attr:`decay_factor` (and :meth:`maybe_roll` does so on a
        #: sim-time schedule when :attr:`decay_interval_ms` is set), so the
        #: hot-spot queries reflect recent load instead of all-time totals.
        #: With decay disabled (the default) the counters accumulate forever,
        #: reproducing the seed behaviour exactly.
        self.access_counts: Dict[int, int] = {}
        #: Sim-time between automatic decay windows (None = decay disabled).
        self.decay_interval_ms: Optional[float] = None
        #: Multiplier applied to every counter when a window rolls.
        self.decay_factor: float = 0.5
        #: Cap on distinct tracked positions; beyond it the coldest
        #: positions are folded into their shard's lo position so wide
        #: keyspaces cannot grow the counter dict without bound.
        self.max_tracked_positions: int = 4096
        #: Number of decay windows rolled so far.
        self.windows_rolled = 0
        self._last_roll_at: Optional[float] = None
        self._rebuild_access_index()
        #: Every epoch the table has been through: (epoch, assignments).
        self.history: List[Tuple[int, Tuple[ShardAssignment, ...]]] = [
            (epoch, tuple(self._assignments))]

    # -- construction -------------------------------------------------------------------
    @classmethod
    def from_strategy(cls, strategy: str, group_count: int,
                      item_count: int = 0) -> "RoutingTable":
        """Build the epoch-0 table reproducing the seed partitioner exactly."""
        if strategy == "hash":
            assignments = [
                ShardAssignment(KeyRange(group_id, group_id + 1), group_id)
                for group_id in range(group_count)]
            return cls(assignments, slots=group_count, strategy="hash",
                       group_count=group_count)
        if strategy == "range":
            if item_count < group_count:
                raise ValueError(
                    f"cannot range-partition {item_count} items into "
                    f"{group_count} partitions")
            bounds = [-(-group_id * item_count // group_count)
                      for group_id in range(group_count)] + [item_count]
            assignments = [
                ShardAssignment(KeyRange(bounds[group_id],
                                         bounds[group_id + 1]), group_id)
                for group_id in range(group_count)]
            return cls(assignments, slots=item_count, strategy="range",
                       group_count=group_count)
        raise ValueError(
            f"unknown routing strategy {strategy!r}; expected one of "
            f"{STRATEGIES}")

    @classmethod
    def recover(cls, records: Iterable[LogRecord], strategy: str,
                group_count: int, item_count: int = 0) -> "RoutingTable":
        """Rebuild the ownership map a restarted cluster would serve with.

        Scans stable write-ahead-log ``records`` for ``EPOCH`` records and
        installs the highest durable epoch; with no durable epoch record the
        map falls back to the epoch-0 strategy layout.  This is the recovery
        contract of online migration: the epoch bump is force-logged before
        the new map is served, so a crash before the flush recovers to the
        old owner and a crash after it to the new one — never to a mix.
        """
        best: Optional[Dict[str, object]] = None
        for record in records:
            if record.record_type is not LogRecordType.EPOCH:
                continue
            payload = record.payload
            if best is None or payload["epoch"] > best["epoch"]:
                best = payload
        if best is None:
            return cls.from_strategy(strategy, group_count, item_count)
        assignments = [
            ShardAssignment(KeyRange(int(lo), int(hi)), int(group_id))
            for lo, hi, group_id in best["assignments"]]
        return cls(assignments, slots=int(best["slots"]),
                   strategy=str(best["strategy"]), group_count=group_count,
                   epoch=int(best["epoch"]))

    # -- invariants ---------------------------------------------------------------------
    def _validate_cover(self) -> None:
        if not self._assignments:
            raise ValueError("the routing table needs at least one shard")
        expected = 0
        for assignment in self._assignments:
            if assignment.key_range.lo != expected:
                raise ValueError(
                    f"assignments do not tile the position space: gap or "
                    f"overlap at position {expected}")
            if not 0 <= assignment.group_id < self.group_count:
                raise ValueError(
                    f"assignment {assignment!r} names an unknown group")
            expected = assignment.key_range.hi
        if expected != self.slots:
            raise ValueError(
                f"assignments cover [0, {expected}) but the position space "
                f"is [0, {self.slots})")

    # -- views --------------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The current ownership-map version."""
        return self._epoch

    @property
    def shard_count(self) -> int:
        """Number of shards (>= group count after splits)."""
        return len(self._assignments)

    @property
    def partition_count(self) -> int:
        """Number of replica groups (Partitioner protocol)."""
        return self.group_count

    @property
    def assignments(self) -> Tuple[ShardAssignment, ...]:
        """The current ordered shard list."""
        return tuple(self._assignments)

    def snapshot(self) -> RoutingSnapshot:
        """The immutable view of the current epoch (cached until a bump)."""
        if self._snapshot is None or self._snapshot.epoch != self._epoch:
            self._snapshot = RoutingSnapshot(
                self._epoch, self._assignments, self.slots, self.strategy,
                self.group_count, position_cache=self._position_cache)
        return self._snapshot

    # -- Partitioner protocol (delegates to the current snapshot) -----------------------
    def position_of(self, key: str) -> int:
        """The routing position of ``key`` (memoized; see the snapshot)."""
        cache = self._position_cache
        position = cache.get(key)
        if position is None:
            if len(cache) >= MEMO_CACHE_LIMIT:
                cache.clear()
            position = cache[key] = position_of_key(key, self.slots,
                                                    self.strategy)
        return position

    def partition_of(self, key: str) -> int:
        """Id of the replica group currently owning ``key``."""
        return self.snapshot().partition_of(key)

    def partitions_of(self, keys: Iterable[str]) -> List[int]:
        """Sorted ids of all groups currently touched by ``keys``."""
        return self.snapshot().partitions_of(keys)

    def partition_keys(self, keys: Iterable[str]) -> Dict[int, List[str]]:
        """Group ``keys`` by current owner, preserving order within each."""
        return self.snapshot().partition_keys(keys)

    # -- shard addressing ---------------------------------------------------------------
    def range_of(self, shard: Union[int, KeyRange]) -> KeyRange:
        """Normalise ``shard`` (index or exact range) to its key range."""
        if isinstance(shard, KeyRange):
            for assignment in self._assignments:
                if assignment.key_range == shard:
                    return shard
            raise ValueError(f"no shard with range {shard!r}")
        return self._assignments[shard].key_range

    def shard_index(self, key_range: KeyRange) -> int:
        """Index of the shard whose range is exactly ``key_range``."""
        for index, assignment in enumerate(self._assignments):
            if assignment.key_range == key_range:
                return index
        raise ValueError(f"no shard with range {key_range!r}")

    def owner_of_range(self, key_range: KeyRange) -> int:
        """Owning group of the shard whose range is exactly ``key_range``."""
        return self._assignments[self.shard_index(key_range)].group_id

    # -- mutations ----------------------------------------------------------------------
    def _bump(self) -> int:
        self._epoch += 1
        self._snapshot = None
        self._rebuild_access_index()
        self.history.append((self._epoch, tuple(self._assignments)))
        return self._epoch

    def _check_not_fenced(self, key_range: KeyRange) -> None:
        for fenced in self._fenced:
            if fenced.lo < key_range.hi and key_range.lo < fenced.hi:
                raise WrongEpochError(
                    f"range {key_range!r} overlaps the fenced range "
                    f"{fenced!r} of a live migration",
                    epoch_seen=self._epoch, epoch_now=self._epoch)

    def split(self, shard: Union[int, KeyRange],
              at: Optional[int] = None) -> int:
        """Cut one shard in two at position ``at`` (default: the midpoint).

        Metadata only — both halves keep the owner, so no data moves.
        Returns the new epoch.
        """
        key_range = self.range_of(shard)
        self._check_not_fenced(key_range)
        if key_range.width < 2:
            raise ValueError(f"cannot split the width-1 range {key_range!r}")
        position = key_range.midpoint if at is None else at
        if not key_range.lo < position < key_range.hi:
            raise ValueError(
                f"split position {position} outside the open interval "
                f"({key_range.lo}, {key_range.hi})")
        index = self.shard_index(key_range)
        owner = self._assignments[index].group_id
        self._assignments[index:index + 1] = [
            ShardAssignment(KeyRange(key_range.lo, position), owner),
            ShardAssignment(KeyRange(position, key_range.hi), owner)]
        return self._bump()

    def merge(self, left_shard: Union[int, KeyRange]) -> int:
        """Rejoin ``left_shard`` with its right neighbour (same owner only).

        Metadata only.  Returns the new epoch.
        """
        key_range = self.range_of(left_shard)
        index = self.shard_index(key_range)
        if index + 1 >= len(self._assignments):
            raise ValueError(f"shard {key_range!r} has no right neighbour")
        left, right = self._assignments[index], self._assignments[index + 1]
        self._check_not_fenced(left.key_range)
        self._check_not_fenced(right.key_range)
        if left.group_id != right.group_id:
            raise ValueError(
                f"cannot merge {left!r} with {right!r}: different owners "
                f"(migrate one first)")
        self._assignments[index:index + 2] = [
            ShardAssignment(KeyRange(left.key_range.lo, right.key_range.hi),
                            left.group_id)]
        return self._bump()

    def migrate(self, shard: Union[int, KeyRange],
                destination_group: int) -> int:
        """Reassign one shard to ``destination_group`` (metadata half only).

        Callers that move *live data* must run the cluster's migration
        protocol (copy, dual-write, fence, force-logged epoch record) and
        call this last; calling it directly on a serving cluster abandons
        the committed state of the range on its old owner.  Returns the new
        epoch.
        """
        key_range = self.range_of(shard)
        if not 0 <= destination_group < self.group_count:
            raise ValueError(f"unknown group {destination_group!r}")
        index = self.shard_index(key_range)
        if self._assignments[index].group_id == destination_group:
            raise ValueError(
                f"shard {key_range!r} already lives on group "
                f"{destination_group}")
        self._assignments[index] = ShardAssignment(key_range,
                                                   destination_group)
        return self._bump()

    def install(self, assignments: Sequence[ShardAssignment],
                epoch: int) -> None:
        """Install a recovered or force-logged map wholesale.

        ``epoch`` must move forward; installing a stale map is the exact
        failure the epoch discipline exists to prevent.
        """
        if epoch <= self._epoch:
            raise WrongEpochError(
                f"cannot install epoch {epoch}: table is already at "
                f"{self._epoch}", epoch_seen=epoch, epoch_now=self._epoch)
        self._assignments = sorted(
            assignments, key=lambda assignment: assignment.key_range.lo)
        self._validate_cover()
        self._epoch = epoch
        self._snapshot = None
        self._rebuild_access_index()
        self.history.append((epoch, tuple(self._assignments)))

    # -- fencing ------------------------------------------------------------------------
    @property
    def has_fences(self) -> bool:
        """True while any range is write-fenced by a migration."""
        return bool(self._fenced)

    def fence(self, key_range: KeyRange) -> None:
        """Fence ``key_range``: new submissions touching it are refused."""
        if key_range not in self._fenced:
            self._fenced.append(key_range)

    def unfence(self, key_range: KeyRange) -> None:
        """Lift the fence on ``key_range`` (idempotent)."""
        if key_range in self._fenced:
            self._fenced.remove(key_range)

    def is_fenced(self, keys: Iterable[str]) -> bool:
        """True if any of ``keys`` falls inside a fenced range."""
        if not self._fenced:
            return False
        for key in keys:
            position = self.position_of(key)
            for fenced in self._fenced:
                if fenced.contains(position):
                    return True
        return False

    # -- access accounting (feeds the skew-aware rebalancer) ----------------------------
    def _rebuild_access_index(self) -> None:
        """Recompute the per-shard totals after the shard list changed.

        :meth:`note_access` maintains the totals incrementally (O(log shards)
        per access); split/merge/migrate/install/decay re-attribute the
        tracked positions to the new shard list in one pass.
        """
        self._bounds = [assignment.key_range.lo
                        for assignment in self._assignments]
        totals = [0] * len(self._assignments)
        for position, count in self.access_counts.items():
            totals[bisect_right(self._bounds, position) - 1] += count
        self._shard_totals = totals
        #: key -> (position, shard index) memo for :meth:`note_access`,
        #: valid until the shard list changes again.
        self._note_cache: Dict[str, Tuple[int, int]] = {}

    def note_access(self, key: str) -> None:
        """Record one access to ``key`` for load accounting."""
        entry = self._note_cache.get(key)
        if entry is None:
            if len(self._note_cache) >= MEMO_CACHE_LIMIT:
                self._note_cache.clear()
            position = self.position_of(key)
            entry = (position, bisect_right(self._bounds, position) - 1)
            self._note_cache[key] = entry
        position, shard_index = entry
        counts = self.access_counts
        count = counts.get(position)
        if count is None:
            if len(counts) >= self.max_tracked_positions:
                self._compact_access_counts()
            counts[position] = 1
        else:
            counts[position] = count + 1
        self._shard_totals[shard_index] += 1

    def note_keys(self, keys: Iterable[str]) -> None:
        """Record one access per key of ``keys``."""
        note_access = self.note_access
        for key in keys:
            note_access(key)

    def _compact_access_counts(self) -> None:
        """Fold the coldest tracked positions into their shard's lo position.

        Keeps the dict at ~half :attr:`max_tracked_positions` entries while
        preserving every shard's total exactly; only the position-level
        resolution of the folded (cold, low-mass) tail is lost, which can
        bias :meth:`hot_split_position` slightly toward the range head.
        """
        keep = max(self.max_tracked_positions // 2, len(self._assignments))
        by_heat = sorted(self.access_counts,
                         key=self.access_counts.__getitem__, reverse=True)
        compacted = {position: self.access_counts[position]
                     for position in by_heat[:keep]}
        for position in by_heat[keep:]:
            shard = bisect_right(self._bounds, position) - 1
            anchor = self._assignments[shard].key_range.lo
            compacted[anchor] = (compacted.get(anchor, 0) +
                                 self.access_counts[position])
        self.access_counts = compacted

    def roll_window(self) -> None:
        """Close one accounting window: decay every counter by the factor.

        Counters that decay to zero are dropped, so cold positions stop
        being tracked; the per-shard totals are rebuilt to match.  With the
        default factor 0.5 the totals converge to an exponentially weighted
        view of roughly the last two windows of traffic.
        """
        factor = self.decay_factor
        self.access_counts = {
            position: decayed
            for position, count in self.access_counts.items()
            if (decayed := int(count * factor)) > 0}
        self.windows_rolled += 1
        self._rebuild_access_index()

    def maybe_roll(self, now: float) -> int:
        """Roll every decay window due by sim-time ``now``.

        A no-op (returning 0) while :attr:`decay_interval_ms` is unset, so
        callers can invoke it unconditionally on hot paths.  Returns the
        number of windows rolled.
        """
        if not self.decay_interval_ms:
            return 0
        if self._last_roll_at is None:
            self._last_roll_at = now
            return 0
        rolled = 0
        while now - self._last_roll_at >= self.decay_interval_ms:
            self.roll_window()
            self._last_roll_at += self.decay_interval_ms
            rolled += 1
        return rolled

    def shard_accesses(self) -> List[int]:
        """Per-shard observed accesses, in :attr:`assignments` order."""
        return list(self._shard_totals)

    def access_count_of(self, key_range: KeyRange) -> int:
        """Observed accesses landing in ``key_range``.

        A range matching a current shard exactly reads the cached total;
        an arbitrary range falls back to scanning the tracked positions.
        """
        try:
            return self._shard_totals[self.shard_index(key_range)]
        except ValueError:
            return sum(count
                       for position, count in self.access_counts.items()
                       if key_range.contains(position))

    def hottest_shard(self) -> int:
        """Index of the shard with the most observed accesses."""
        return max(range(len(self._shard_totals)),
                   key=self._shard_totals.__getitem__)

    def coolest_group(self, exclude: Iterable[int] = ()) -> int:
        """Group with the fewest observed accesses (ties -> lowest id)."""
        excluded = set(exclude)
        totals = {group_id: 0 for group_id in range(self.group_count)
                  if group_id not in excluded}
        if not totals:
            raise ValueError("every group is excluded")
        for index, assignment in enumerate(self._assignments):
            if assignment.group_id in totals:
                totals[assignment.group_id] += self._shard_totals[index]
        return min(sorted(totals), key=totals.__getitem__)

    def hot_split_position(self, shard: Union[int, KeyRange]
                           ) -> Optional[int]:
        """The access-weighted median position of one shard.

        Splitting there leaves ~half the shard's observed load on each side
        — the skew-aware boundary that un-skews a Zipf head.  Returns None
        when the shard has no recorded accesses (fall back to the midpoint).
        """
        key_range = self.range_of(shard)
        positions = sorted(position
                           for position in self.access_counts
                           if key_range.contains(position))
        if not positions:
            return None
        total = sum(self.access_counts[position] for position in positions)
        running = 0
        for position in positions:
            running += self.access_counts[position]
            if running * 2 >= total:
                # A maximally skewed shard puts the weighted median on its
                # last position; clamp to the largest legal split point
                # instead of abandoning the load signal for the midpoint.
                candidate = min(position + 1, key_range.hi - 1)
                if key_range.lo < candidate:
                    return candidate
                break
        midpoint = key_range.midpoint
        return midpoint if key_range.lo < midpoint < key_range.hi else None

    # -- serialisation ------------------------------------------------------------------
    def as_payload(self) -> Dict[str, object]:
        """The WAL-record payload describing the current map."""
        return self.payload_for(self._assignments, self._epoch)

    def payload_for(self, assignments: Sequence[ShardAssignment],
                    epoch: int) -> Dict[str, object]:
        """A WAL-record payload for an explicit (epoch, assignments) pair."""
        return {
            "epoch": epoch,
            "slots": self.slots,
            "strategy": self.strategy,
            "assignments": [
                [assignment.key_range.lo, assignment.key_range.hi,
                 assignment.group_id]
                for assignment in assignments],
        }

    def payload_after_migrate(self, key_range: KeyRange,
                              destination_group: int) -> Dict[str, object]:
        """The payload the map will have once ``key_range`` moved.

        Used to force-log the *new* map before installing it (write-ahead
        discipline): the record is what recovery serves, so it must describe
        the post-bump state.
        """
        index = self.shard_index(key_range)
        assignments = list(self._assignments)
        assignments[index] = ShardAssignment(key_range, destination_group)
        return self.payload_for(assignments, self._epoch + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<RoutingTable epoch={self._epoch} "
                f"shards={len(self._assignments)} groups={self.group_count}>")
