"""Partition-aware workload generation and load drivers.

:class:`PartitionedWorkloadGenerator` extends the Table 4 workload model with
the two knobs the partitioned experiments sweep:

* ``cross_partition_probability`` — the fraction of transactions that span
  more than one partition (``cross_partition_span`` of them, default 2);
* ``zipf_skew`` — inherited from :class:`~repro.workload.WorkloadGenerator`:
  item accesses follow a Zipf distribution over the global item ranking, so a
  skewed workload concentrates on the hot head of the keyspace.

Every draw comes from named random streams, so two runs with the same seed —
or two *techniques* compared under the same seed — see exactly the same
sequence of programs, single- and cross-partition alike.  This extends the
common-random-numbers discipline of the single-group study to the new
partition axis.

:class:`PartitionedOpenLoopClients` is the open-loop (Poisson arrivals)
driver for a :class:`~repro.partition.cluster.PartitionedCluster`; it is the
partitioned counterpart of
:class:`~repro.workload.clients.OpenLoopClientPool`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..db.operations import Operation, OperationType, TransactionProgram
from ..replication.results import TransactionResult
from ..sim.engine import Simulator
from ..workload.generator import WorkloadGenerator, zipf_cumulative
from ..workload.params import SimulationParameters
from .coordinator import CrossPartitionOutcome
from .partitioner import Partitioner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .cluster import PartitionedCluster


class PartitionedWorkloadGenerator(WorkloadGenerator):
    """Table 4 transactions, confined to or deliberately spanning partitions."""

    def __init__(self, sim: Simulator, params: SimulationParameters,
                 partitioner: Partitioner,
                 item_keys: Optional[Sequence[str]] = None,
                 stream_prefix: str = "workload",
                 skew: Optional[float] = None) -> None:
        super().__init__(sim, params, item_keys=item_keys,
                         stream_prefix=stream_prefix, skew=skew)
        self.partitioner = partitioner
        if not 0.0 <= params.cross_partition_probability <= 1.0:
            raise ValueError("cross-partition probability out of range")
        self._keys_by_partition: Dict[int, List[str]] = \
            partitioner.partition_keys(self.item_keys)
        empty = [pid for pid in range(partitioner.partition_count)
                 if not self._keys_by_partition.get(pid)]
        if empty:
            raise ValueError(
                f"partitions {empty} own no items; use more items or fewer "
                f"partitions")
        # Per-partition cumulative weight tables for skewed draws: each key
        # keeps the weight of its *global* rank, so restricting a transaction
        # to one partition preserves the shape of the hot set.
        self._cumulative_by_partition: Dict[int, List[float]] = {}
        if self.skew > 0:
            global_rank = {key: index for index, key in
                           enumerate(self.item_keys)}
            for partition_id, keys in self._keys_by_partition.items():
                total = 0.0
                cumulative: List[float] = []
                for key in keys:
                    total += (global_rank[key] + 1) ** -self.skew
                    cumulative.append(total)
                self._cumulative_by_partition[partition_id] = cumulative
        #: Statistics.
        self.single_partition_generated = 0
        self.cross_partition_generated = 0

    # -- generation ----------------------------------------------------------------------
    def next_program(self, client: str = "client") -> TransactionProgram:
        """Generate the next (single- or cross-partition) program.

        A single-partition program draws every key from the *global* item
        distribution: the first draw decides the home partition (so a hot
        partition attracts proportionally more transactions), and each later
        operation draws within the home partition with its keys' global rank
        mass.  Summed over partitions this makes every operation's marginal
        distribution exactly the global (uniform or Zipf) one — partitioning
        changes *where* keys live, not *how often* each is accessed.
        Cross-partition programs pin one operation to each
        of ``cross_partition_span`` uniformly sampled partitions and spread
        the rest across the involved set.
        """
        length = self.sim.random.randint(
            f"{self.stream_prefix}.length",
            self.params.transaction_length_min,
            self.params.transaction_length_max)
        span = min(self.params.cross_partition_span,
                   self.partitioner.partition_count, length)
        cross = span >= 2 and self.sim.random.bernoulli(
            f"{self.stream_prefix}.xpartition",
            self.params.cross_partition_probability)
        first_key: Optional[str] = None
        if cross:
            self.cross_partition_generated += 1
            partition_ids = self.sim.random.sample(
                f"{self.stream_prefix}.xpartition.members",
                range(self.partitioner.partition_count), span)
        else:
            self.single_partition_generated += 1
            first_key = self.choose_key()
            partition_ids = [self.partitioner.partition_of(first_key)]

        operations: List[Operation] = []
        for position in range(length):
            if first_key is not None and position == 0:
                key = first_key
            else:
                if position < len(partition_ids):
                    # Pinned: one operation per involved partition guarantees
                    # the program genuinely spans all of them.
                    partition_id = partition_ids[position]
                else:
                    partition_id = self.sim.random.choice(
                        f"{self.stream_prefix}.op_partition", partition_ids)
                key = self.choose_key(
                    keys=self._keys_by_partition[partition_id],
                    cumulative=self._cumulative_by_partition.get(partition_id))
            is_write = self.sim.random.bernoulli(
                f"{self.stream_prefix}.write", self.params.write_probability)
            if is_write:
                operations.append(Operation(OperationType.WRITE, key,
                                            value=f"{client}@{position}"))
            else:
                operations.append(Operation(OperationType.READ, key))
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)


class PartitionedOpenLoopClients:
    """Poisson arrivals at a fixed system-wide rate against a partitioned cluster."""

    def __init__(self, cluster: "PartitionedCluster", load_tps: float,
                 warmup: float = 0.0) -> None:
        if load_tps <= 0:
            raise ValueError("load must be positive")
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.workload: PartitionedWorkloadGenerator = cluster.workload
        self.load_tps = load_tps
        self.warmup = warmup
        self._next_client = 0
        #: Fast-path results observed after warm-up.
        self.single_results: List[TransactionResult] = []
        #: Cross-partition outcomes observed after warm-up.
        self.cross_results: List[CrossPartitionOutcome] = []
        self.warmup_count = 0
        self.submitted_count = 0
        #: Arrivals dropped because no delegate was reachable.
        self.rejected_count = 0

    def start(self) -> None:
        """Start the arrival process."""
        self.sim.spawn(self._arrivals(), name="clients.partitioned_open_loop")

    def _arrivals(self):
        while True:
            gap = self.workload.interarrival_time(self.load_tps)
            yield self.sim.timeout(gap)
            client_index = self._next_client
            self._next_client += 1
            program = self.workload.next_program(
                client=f"client-{client_index}")
            self.sim.spawn(self._one_transaction(program, client_index),
                           name=f"client.txn.{program.program_id}")

    def _one_transaction(self, program: TransactionProgram,
                         client_index: int):
        submitted_at = self.sim.now
        try:
            event = self.cluster.submit(program, client_index=client_index)
        except RuntimeError:
            # Every server of the owning partition is down right now.
            self.rejected_count += 1
            return
        self.submitted_count += 1
        outcome = yield event
        if submitted_at < self.warmup:
            self.warmup_count += 1
            return
        if isinstance(outcome, CrossPartitionOutcome):
            self.cross_results.append(outcome)
        else:
            self.single_results.append(outcome)

    # -- derived statistics -------------------------------------------------------------
    @property
    def results(self) -> List[object]:
        """All post-warm-up results (fast path first, then cross-partition)."""
        return list(self.single_results) + list(self.cross_results)

    @property
    def committed_count(self) -> int:
        """Committed transactions of both kinds after warm-up."""
        return sum(1 for result in self.results if result.committed)

    def response_times(self, committed_only: bool = True) -> List[float]:
        """Response times (ms) of post-warm-up transactions."""
        return [result.response_time for result in self.results
                if result.committed or not committed_only]
