"""Partition-aware workload generation and load drivers.

:class:`PartitionedWorkloadGenerator` extends the Table 4 workload model with
the two knobs the partitioned experiments sweep:

* ``cross_partition_probability`` — the fraction of transactions that span
  more than one partition (``cross_partition_span`` of them, default 2);
* ``zipf_skew`` — inherited from :class:`~repro.workload.WorkloadGenerator`:
  item accesses follow a Zipf distribution over the global item ranking, so a
  skewed workload concentrates on the hot head of the keyspace.

The generator reads ownership from the cluster's epoch-versioned
:class:`~repro.partition.routing.RoutingTable` (any frozen object speaking
the partitioner protocol still works): when a shard
split or a live migration bumps the epoch, the per-partition key caches are
rebuilt lazily, so "single-partition" transactions keep landing on one
*current* owner — the whole point of moving a hot range is that the traffic
follows it.

Every draw comes from named random streams, so two runs with the same seed —
or two *techniques* compared under the same seed — see exactly the same
sequence of programs until the first epoch change forces them to differ.

Two load drivers are provided, mirroring the single-group client models:

* :class:`PartitionedOpenLoopClients` — open loop, Poisson arrivals at a
  fixed system-wide rate (the Fig. 9 X-axis discipline);
* :class:`PartitionedClosedLoopClients` — the Table 4 client model taken
  literally: ``clients_per_server`` clients per server across all groups,
  each thinking an exponential time between transactions.

Both submit through :meth:`~repro.partition.cluster.PartitionedCluster.
submit_retrying`, so a client whose keys are mid-migration transparently
retries against the new epoch, and both keep per-epoch and during-migration
commit counters for the rebalance experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..db.operations import Operation, OperationType, TransactionProgram
from ..replication.results import TransactionResult
from ..sim.engine import Simulator
from ..workload.generator import AliasSampler, WorkloadGenerator
from ..workload.params import SimulationParameters
from .coordinator import CrossPartitionOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .cluster import PartitionedCluster


class PartitionedWorkloadGenerator(WorkloadGenerator):
    """Table 4 transactions, confined to or deliberately spanning partitions."""

    def __init__(self, sim: Simulator, params: SimulationParameters,
                 routing,
                 item_keys: Optional[Sequence[str]] = None,
                 stream_prefix: str = "workload",
                 skew: Optional[float] = None) -> None:
        super().__init__(sim, params, item_keys=item_keys,
                         stream_prefix=stream_prefix, skew=skew)
        #: The ownership map (RoutingTable or legacy Partitioner).
        self.routing = routing
        if not 0.0 <= params.cross_partition_probability <= 1.0:
            raise ValueError("cross-partition probability out of range")
        # Interned stream handles for the partition-specific draws (the base
        # class hoists the item/length/write/arrival streams).
        streams = sim.random
        self._xpartition_stream = streams.stream(
            f"{stream_prefix}.xpartition")
        self._members_stream = streams.stream(
            f"{stream_prefix}.xpartition.members")
        self._op_partition_stream = streams.stream(
            f"{stream_prefix}.op_partition")
        self._global_rank = {key: index for index, key in
                             enumerate(self.item_keys)} if self.skew > 0 \
            else {}
        #: Current rotation of the Zipf ranking (see :meth:`shift_hotspot`).
        self.hot_offset = 0
        self._seen_epoch = getattr(routing, "epoch", 0)
        self._refresh_partition_caches(strict=True)
        #: Statistics.
        self.single_partition_generated = 0
        self.cross_partition_generated = 0

    @property
    def partitioner(self):
        """Deprecated alias for :attr:`routing` (the old attribute name)."""
        return self.routing

    # -- ownership caches ----------------------------------------------------------------
    def _refresh_partition_caches(self, strict: bool = False) -> None:
        """Rebuild the per-partition key/weight tables from current ownership.

        ``strict`` (construction time) refuses empty partitions — a
        mis-sized initial layout is a configuration error.  Later refreshes
        tolerate them: after migrations a group may legitimately own
        nothing, and the generator simply stops targeting it.
        """
        self._keys_by_partition: Dict[int, List[str]] = \
            self.routing.partition_keys(self.item_keys)
        empty = [pid for pid in range(self.routing.partition_count)
                 if not self._keys_by_partition.get(pid)]
        if empty and strict:
            raise ValueError(
                f"partitions {empty} own no items; use more items or fewer "
                f"partitions")
        self._nonempty_partitions: List[int] = [
            pid for pid in range(self.routing.partition_count)
            if self._keys_by_partition.get(pid)]
        # Per-partition cumulative weight tables for skewed draws: each key
        # keeps the weight of its *global* rank, so restricting a transaction
        # to one partition preserves the shape of the hot set.
        self._cumulative_by_partition: Dict[int, List[float]] = {}
        self._alias_by_partition: Dict[int, AliasSampler] = {}
        if self.skew > 0:
            for partition_id, keys in self._keys_by_partition.items():
                total = 0.0
                cumulative: List[float] = []
                for key in keys:
                    total += (self._global_rank[key] + 1) ** -self.skew
                    cumulative.append(total)
                self._cumulative_by_partition[partition_id] = cumulative
                if self.alias_sampling:
                    self._alias_by_partition[partition_id] = \
                        AliasSampler.from_cumulative(cumulative)

    def _refresh_if_stale(self) -> None:
        epoch = getattr(self.routing, "epoch", 0)
        if epoch != self._seen_epoch:
            self._seen_epoch = epoch
            self._refresh_partition_caches(strict=False)

    # -- hotspot injection ---------------------------------------------------------------
    def shift_hotspot(self, offset: int) -> None:
        """Rotate the Zipf ranking by ``offset`` positions mid-run.

        The access distribution keeps its exact shape but the hot head moves
        to ``item-<offset>``: after the shift, item ``i`` carries the weight
        of global rank ``(i - offset) mod item_count``.  This is the
        workload-side fault injection of the autobalance experiments — a
        sudden hotspot shift the controller must detect and repair without
        operator action.  A no-op for uniform workloads (skew 0).
        """
        if self.skew <= 0:
            return
        count = len(self.item_keys)
        offset %= count
        self.hot_offset = offset
        self._global_rank = {key: (index - offset) % count
                             for index, key in enumerate(self.item_keys)}
        total = 0.0
        cumulative: List[float] = []
        for key in self.item_keys:
            total += (self._global_rank[key] + 1) ** -self.skew
            cumulative.append(total)
        self._cumulative = cumulative
        if self.alias_sampling:
            self._alias = AliasSampler.from_cumulative(cumulative)
        self._refresh_partition_caches(strict=False)

    # -- generation ----------------------------------------------------------------------
    def next_program(self, client: str = "client") -> TransactionProgram:
        """Generate the next (single- or cross-partition) program.

        A single-partition program draws every key from the *global* item
        distribution: the first draw decides the home partition (so a hot
        partition attracts proportionally more transactions), and each later
        operation draws within the home partition with its keys' global rank
        mass.  Summed over partitions this makes every operation's marginal
        distribution exactly the global (uniform or Zipf) one — partitioning
        changes *where* keys live, not *how often* each is accessed.
        Cross-partition programs pin one operation to each
        of ``cross_partition_span`` uniformly sampled partitions and spread
        the rest across the involved set.
        """
        self._refresh_if_stale()
        length = self._length_stream.randint(
            self.params.transaction_length_min,
            self.params.transaction_length_max)
        span = min(self.params.cross_partition_span,
                   len(self._nonempty_partitions), length)
        cross = span >= 2 and (self._xpartition_stream.random() <
                               self.params.cross_partition_probability)
        first_key: Optional[str] = None
        if cross:
            self.cross_partition_generated += 1
            partition_ids = self._members_stream.sample(
                self._nonempty_partitions, span)
        else:
            self.single_partition_generated += 1
            first_key = self.choose_key()
            partition_ids = [self.routing.partition_of(first_key)]

        pinned = len(partition_ids)
        write_random = self._write_stream.random
        write_probability = self.params.write_probability
        operations: List[Operation] = []
        append = operations.append
        for position in range(length):
            if first_key is not None and position == 0:
                key = first_key
            else:
                if position < pinned:
                    # Pinned: one operation per involved partition guarantees
                    # the program genuinely spans all of them.
                    partition_id = partition_ids[position]
                else:
                    partition_id = self._op_partition_stream.choice(
                        partition_ids)
                key = self.choose_key(
                    keys=self._keys_by_partition[partition_id],
                    cumulative=self._cumulative_by_partition.get(partition_id),
                    alias=self._alias_by_partition.get(partition_id))
            if write_random() < write_probability:
                append(Operation(OperationType.WRITE, key,
                                 value=f"{client}@{position}"))
            else:
                append(Operation(OperationType.READ, key))
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)


class _PartitionedClientBase:
    """Shared bookkeeping of the partitioned load drivers."""

    def __init__(self, cluster: "PartitionedCluster",
                 warmup: float = 0.0) -> None:
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.workload: PartitionedWorkloadGenerator = cluster.workload
        self.warmup = warmup
        #: Fast-path results observed after warm-up.
        self.single_results: List[TransactionResult] = []
        #: Cross-partition outcomes observed after warm-up.
        self.cross_results: List[CrossPartitionOutcome] = []
        #: Results whose submission fell inside the warm-up window (kept for
        #: the commit-integrity audits, excluded from the statistics).
        self.warmup_single_results: List[TransactionResult] = []
        self.warmup_cross_results: List[CrossPartitionOutcome] = []
        self.warmup_count = 0
        self.submitted_count = 0
        #: Arrivals dropped because no delegate was reachable.
        self.rejected_count = 0
        #: Committed transactions per routing epoch (at response time).
        self.epoch_commits: Dict[int, int] = {}
        #: Client-visible terminations while a migration was in flight.
        self.during_migration_commits = 0
        self.during_migration_aborts = 0

    def _run_one(self, program: TransactionProgram, client_index: int):
        """Generator: submit one program (with epoch retries) and record it."""
        submitted_at = self.sim.now
        try:
            outcome = yield from self.cluster.submit_retrying(
                program, client_index=client_index)
        except RuntimeError:
            # Every server of the owning partition is down right now.
            self.rejected_count += 1
            return
        self.submitted_count += 1
        self._record(outcome, submitted_at)

    def _record(self, outcome, submitted_at: float) -> None:
        if self.cluster.migration_active:
            if outcome.committed:
                self.during_migration_commits += 1
            else:
                self.during_migration_aborts += 1
        if outcome.committed:
            epoch = getattr(self.cluster.routing, "epoch", 0)
            self.epoch_commits[epoch] = self.epoch_commits.get(epoch, 0) + 1
            metrics = getattr(self.cluster, "metrics", None)
            if metrics is not None:
                kind = ("cross" if isinstance(outcome, CrossPartitionOutcome)
                        else "single")
                metrics.histogram("response_time_ms", kind=kind).observe(
                    outcome.response_time)
        if submitted_at < self.warmup:
            self.warmup_count += 1
            if isinstance(outcome, CrossPartitionOutcome):
                self.warmup_cross_results.append(outcome)
            else:
                self.warmup_single_results.append(outcome)
            return
        if isinstance(outcome, CrossPartitionOutcome):
            self.cross_results.append(outcome)
        else:
            self.single_results.append(outcome)

    # -- derived statistics -------------------------------------------------------------
    @property
    def results(self) -> List[object]:
        """All post-warm-up results (fast path first, then cross-partition)."""
        return list(self.single_results) + list(self.cross_results)

    @property
    def committed_count(self) -> int:
        """Committed transactions of both kinds after warm-up."""
        return sum(1 for result in self.results if result.committed)

    def response_times(self, committed_only: bool = True) -> List[float]:
        """Response times (ms) of post-warm-up transactions."""
        return [result.response_time for result in self.results
                if result.committed or not committed_only]


class PartitionedOpenLoopClients(_PartitionedClientBase):
    """Poisson arrivals at a fixed system-wide rate against a partitioned cluster."""

    def __init__(self, cluster: "PartitionedCluster", load_tps: float,
                 warmup: float = 0.0) -> None:
        super().__init__(cluster, warmup=warmup)
        if load_tps <= 0:
            raise ValueError("load must be positive")
        self.load_tps = load_tps
        self._next_client = 0

    def start(self) -> None:
        """Start the arrival process."""
        self.sim.spawn(self._arrivals(), name="clients.partitioned_open_loop")

    def _arrivals(self):
        while True:
            gap = self.workload.interarrival_time(self.load_tps)
            yield self.sim.timeout(gap)
            client_index = self._next_client
            self._next_client += 1
            program = self.workload.next_program(
                client=f"client-{client_index}")
            self.sim.spawn(self._run_one(program, client_index),
                           name=f"client.txn.{program.program_id}")


class PartitionedClosedLoopClients(_PartitionedClientBase):
    """Table 4's client model across a partitioned cluster.

    ``clients_per_server`` clients per server of every group, each
    submitting a fresh transaction an exponential think time after its
    previous one terminated — the self-throttling load model of the paper,
    now spanning shards (the ROADMAP "closed-loop client pool" item).
    """

    def __init__(self, cluster: "PartitionedCluster", think_time_mean: float,
                 warmup: float = 0.0,
                 clients_per_server: Optional[int] = None) -> None:
        super().__init__(cluster, warmup=warmup)
        if think_time_mean <= 0:
            raise ValueError("think time must be positive")
        self.think_time_mean = think_time_mean
        self.clients_per_server = clients_per_server or \
            cluster.params.clients_per_server

    @property
    def client_count(self) -> int:
        """Total number of closed-loop clients."""
        return self.clients_per_server * len(self.cluster.server_names())

    def start(self) -> None:
        """Start every client process."""
        client_index = 0
        for server in self.cluster.server_names():
            for _ in range(self.clients_per_server):
                name = f"client-{client_index}"
                self.sim.spawn(self._client_loop(name, client_index),
                               name=f"clients.{name}")
                client_index += 1

    def _client_loop(self, client_name: str, client_index: int):
        think_stream = self.sim.random.stream(f"clients.{client_name}.think")
        think_rate = 1.0 / self.think_time_mean
        while True:
            yield self.sim.timeout(think_stream.expovariate(think_rate))
            program = self.workload.next_program(client=client_name)
            yield from self._run_one(program, client_index)
