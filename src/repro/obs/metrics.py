"""A labelled metrics registry: counters, gauges and fixed-bucket histograms.

The registry replaces the ad-hoc integer counters that had accumulated on the
cluster, the 2PC coordinator, the router and the controller.  An instrument
is identified by ``(kind, name, sorted label items)``; asking for the same
name and labels twice returns the same handle, so call sites can either keep
a handle (hot paths) or look one up on demand (reporting paths).

Instruments are plain Python objects mutated in place — obtaining or updating
one never schedules simulation events or draws random numbers, so metrics
cannot perturb a run.

**Collectors** bridge pull-style sources: a collector is a callable invoked
at :meth:`MetricsRegistry.snapshot` time that samples external state (LAN
message counts, WAL flush totals, controller decisions, ...) into gauges.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency bucket upper bounds (milliseconds, inclusive).  Chosen to
#: straddle the paper's response-time range: sub-millisecond local work up to
#: multi-second outage-shadowed commits.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0)

_LabelItems = Tuple[Tuple[str, Any], ...]


def _label_items(labels: Dict[str, Any]) -> _LabelItems:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing labelled counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Counter {self.name} {dict(self.labels)} = {self.value}>"


class Gauge:
    """A labelled value that can go up and down (or be set outright)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: _LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: Any) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1)."""
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        """Subtract ``amount`` (default 1)."""
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Gauge {self.name} {dict(self.labels)} = {self.value}>"


class Histogram:
    """A fixed-bucket histogram.

    ``buckets`` are inclusive upper bounds; an observation lands in the first
    bucket whose bound is >= the value, and values above the last bound land
    in the implicit overflow bucket (``bucket_counts`` has
    ``len(buckets) + 1`` entries).
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "total")

    def __init__(self, name: str, labels: _LabelItems,
                 buckets: Sequence[float]) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted, got {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 if empty)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<Histogram {self.name} {dict(self.labels)} "
                f"n={self.count} mean={self.mean:.3f}>")


class MetricsRegistry:
    """Owns every instrument of one cluster/run plus the pull collectors."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, _LabelItems], Any] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- instrument factories ------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        """Return (creating if needed) the counter ``name`` with ``labels``."""
        key = ("counter", name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Counter(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Return (creating if needed) the gauge ``name`` with ``labels``."""
        key = ("gauge", name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Gauge(name, key[2])
            self._instruments[key] = instrument
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        """Return (creating if needed) the histogram ``name``/``labels``.

        ``buckets`` only matters on first creation; later lookups return the
        existing instrument unchanged.
        """
        key = ("histogram", name, _label_items(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(
                name, key[2],
                DEFAULT_LATENCY_BUCKETS_MS if buckets is None else buckets)
            self._instruments[key] = instrument
        return instrument

    # -- collectors ----------------------------------------------------------
    def register_collector(
            self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Add a pull-style sampler invoked at :meth:`snapshot` time."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector once."""
        for collector in self._collectors:
            collector(self)

    # -- export --------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """Collect, then serialise every instrument to plain dictionaries."""
        self.collect()
        rows: List[Dict[str, Any]] = []
        for (kind, name, labels), instrument in sorted(
                self._instruments.items(),
                key=lambda item: (item[0][1], item[0][0], repr(item[0][2]))):
            row: Dict[str, Any] = {
                "kind": kind,
                "name": name,
                "labels": {key: value for key, value in labels},
            }
            if kind == "histogram":
                row["buckets"] = list(instrument.buckets)
                row["bucket_counts"] = list(instrument.bucket_counts)
                row["count"] = instrument.count
                row["total"] = instrument.total
            else:
                row["value"] = instrument.value
            rows.append(row)
        return rows

    def render(self) -> str:
        """Human-readable one-line-per-instrument dump of a snapshot."""
        lines = []
        for row in self.snapshot():
            labels = ",".join(f"{key}={value}"
                              for key, value in sorted(row["labels"].items()))
            label_text = f"{{{labels}}}" if labels else ""
            if row["kind"] == "histogram":
                mean = row["total"] / row["count"] if row["count"] else 0.0
                value = f"count={row['count']} mean={mean:.3f}"
            else:
                value = str(row["value"])
            lines.append(f"{row['name']}{label_text} {value}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<MetricsRegistry instruments={len(self._instruments)} "
                f"collectors={len(self._collectors)}>")
