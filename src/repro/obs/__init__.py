"""Observability layer: span tracing, metrics and exporters.

Everything in this package observes the simulation without perturbing it:
spans and instants only read ``sim.now`` and append to Python lists, metrics
only mutate plain counters — no simulation events are scheduled and no random
streams are drawn.  A run therefore produces a bit-identical event trace with
observability on or off, which is the licence the PR-5 kernel fast path
operates under.

With observability *off* (the default) every instrumentation site costs one
attribute load and a ``None`` check (``obs = self.sim.obs`` /
``if obs is not None``), mirroring the failpoint idiom.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Instant, Observability, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "Observability",
    "Span",
]
