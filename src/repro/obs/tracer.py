"""Span tracing driven by simulated time.

:class:`Observability` attaches to a :class:`~repro.sim.engine.Simulator`
(``sim.obs``) and records **spans** (named intervals with parent/child links)
and **instants** (point events).  Timestamps are the simulated clock, never
wall-clock time, so a trace is as deterministic as the run that produced it.

Spans can be registered under a **key** (any hashable, e.g.
``("txn", txn_id)``) so that instrumentation sites in different modules can
link to a parent without holding a reference to it.  The key map persists
after a span closes: a child that starts late (a WAL flush acknowledging a
transaction that already responded) still resolves its parent.  Re-using a
key overwrites the mapping — last writer wins — which is what retried
transactions want.

:meth:`Observability.critical_path` attributes a root span's duration to
stages.  All closed descendant spans with an attributable category are
clipped to the root's interval; a boundary sweep then assigns every
elementary sub-interval to the highest-priority active category
(``disk > network > cpu > protocol``) so overlapping children are not double
counted.  Whatever remains unattributed is reported as ``queue``, which makes
the stage breakdown sum to the root's duration by construction.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, List, Optional

#: Attribution order for the critical-path sweep: when several child spans
#: overlap, the sub-interval counts toward the highest-priority category.
CATEGORY_PRIORITY = ("disk", "network", "cpu", "protocol")

#: Stage keys of a critical-path breakdown, in reporting order.
STAGES = ("queue", "network", "disk", "cpu", "protocol")

_PRIORITY_RANK = {name: rank for rank, name in enumerate(CATEGORY_PRIORITY)}


class Span:
    """A named interval of simulated time with an optional parent link."""

    __slots__ = ("span_id", "name", "category", "track", "start", "end",
                 "parent_id", "labels", "root")

    def __init__(self, span_id: int, name: str, category: str, track: str,
                 start: float, parent_id: Optional[int],
                 labels: Optional[Dict[str, Any]], root: bool) -> None:
        self.span_id = span_id
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        self.labels: Dict[str, Any] = labels if labels is not None else {}
        self.root = root

    @property
    def closed(self) -> bool:
        """True once :meth:`Observability.end` has stamped the span."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in milliseconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        end = f"{self.end:.3f}" if self.end is not None else "open"
        return (f"<Span #{self.span_id} {self.name!r} {self.category} "
                f"[{self.start:.3f}..{end}]>")


class Instant:
    """A point event on a track (rendered as an instant marker in Perfetto)."""

    __slots__ = ("name", "track", "at", "labels")

    def __init__(self, name: str, track: str, at: float,
                 labels: Optional[Dict[str, Any]]) -> None:
        self.name = name
        self.track = track
        self.at = at
        self.labels: Dict[str, Any] = labels if labels is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Instant {self.name!r} @{self.at:.3f}>"


class Observability:
    """Span and instant recorder for one simulator.

    Constructing one installs it as ``sim.obs``, which is the single flag
    every instrumentation site checks.  Recording only reads ``sim.now`` and
    appends to lists — no events are scheduled, no RNG streams are drawn —
    so enabling observability cannot change the simulation schedule.
    """

    def __init__(self, sim: Any) -> None:
        self.sim = sim
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._ids = itertools.count(1)
        self._by_id: Dict[int, Span] = {}
        self._by_key: Dict[Hashable, Span] = {}
        self._children: Dict[int, List[Span]] = {}
        sim.obs = self

    # -- recording ----------------------------------------------------------
    def begin(self, name: str, category: str = "protocol",
              track: str = "sim", parent: Any = None,
              key: Optional[Hashable] = None, root: bool = False,
              labels: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span starting now.

        ``parent`` may be a :class:`Span` or a registration key; an unknown
        key leaves the span parentless rather than failing, because the
        parent site may simply not be instrumented in this configuration.
        """
        parent_id: Optional[int] = None
        if parent is not None:
            if isinstance(parent, Span):
                parent_id = parent.span_id
            else:
                resolved = self._by_key.get(parent)
                if resolved is not None:
                    parent_id = resolved.span_id
        span = Span(next(self._ids), name, category, track, self.sim.now,
                    parent_id, labels, root)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        if key is not None:
            self._by_key[key] = span
        if parent_id is not None:
            self._children.setdefault(parent_id, []).append(span)
        return span

    def end(self, span: Span,
            labels: Optional[Dict[str, Any]] = None) -> Span:
        """Close ``span`` now.  Idempotent: a second end keeps the first."""
        if span.end is None:
            span.end = self.sim.now
        if labels:
            span.labels.update(labels)
        return span

    def end_key(self, key: Hashable,
                labels: Optional[Dict[str, Any]] = None) -> Optional[Span]:
        """Close the span registered under ``key`` (no-op if unknown)."""
        span = self._by_key.get(key)
        if span is None:
            return None
        return self.end(span, labels)

    def span_for(self, key: Hashable) -> Optional[Span]:
        """Return the span registered under ``key``, if any."""
        return self._by_key.get(key)

    def instant(self, name: str, track: str = "sim",
                labels: Optional[Dict[str, Any]] = None) -> Instant:
        """Record a point event at the current simulated time."""
        event = Instant(name, track, self.sim.now, labels)
        self.instants.append(event)
        return event

    # -- tree queries -------------------------------------------------------
    def roots(self) -> List[Span]:
        """Spans opened with ``root=True``, in start order."""
        return [span for span in self.spans if span.root]

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in begin order."""
        return list(self._children.get(span.span_id, ()))

    def descendants(self, span: Span) -> List[Span]:
        """All transitive children of ``span`` (pre-order)."""
        found: List[Span] = []
        stack = list(reversed(self._children.get(span.span_id, ())))
        while stack:
            current = stack.pop()
            found.append(current)
            stack.extend(reversed(self._children.get(current.span_id, ())))
        return found

    # -- critical path ------------------------------------------------------
    def critical_path(self, root: Span) -> Dict[str, float]:
        """Attribute ``root``'s duration to stages; sums to the duration.

        Returns an ordered mapping over :data:`STAGES`.  Only closed
        descendants with a category in :data:`CATEGORY_PRIORITY` contribute;
        they are clipped to the root interval, and overlap resolves to the
        highest-priority category.  ``queue`` is the unattributed residual.
        """
        start = root.start
        end = root.end if root.end is not None else self.sim.now
        duration = end - start
        stages: Dict[str, float] = {stage: 0.0 for stage in STAGES}
        intervals = []
        for span in self.descendants(root):
            if span.category not in _PRIORITY_RANK or span.end is None:
                continue
            clipped_start = span.start if span.start > start else start
            clipped_end = span.end if span.end < end else end
            if clipped_end > clipped_start:
                intervals.append((clipped_start, clipped_end, span.category))
        attributed = 0.0
        if intervals:
            points = sorted({point for left, right, _ in intervals
                             for point in (left, right)})
            for left, right in zip(points, points[1:]):
                winner: Optional[str] = None
                rank = len(CATEGORY_PRIORITY)
                for span_left, span_right, category in intervals:
                    if span_left <= left and right <= span_right:
                        category_rank = _PRIORITY_RANK[category]
                        if category_rank < rank:
                            rank = category_rank
                            winner = category
                if winner is not None:
                    width = right - left
                    stages[winner] += width
                    attributed += width
        residual = duration - attributed
        stages["queue"] = residual if residual > 0.0 else 0.0
        return stages

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<Observability spans={len(self.spans)} "
                f"instants={len(self.instants)}>")
