"""Exporters for recorded traces.

Two output formats:

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — the ``{"traceEvents": [...]}`` object format
  understood by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
  Spans become ``"X"`` complete events, instants become ``"i"`` events, and
  each tracer track becomes a named thread via ``"M"`` metadata events.
  Timestamps are microseconds, so simulated milliseconds are scaled by 1000.
* **critical-path text report** (:func:`critical_path_report`) — one line per
  root span attributing its duration to queue/network/disk/cpu/protocol
  stages (see :meth:`repro.obs.tracer.Observability.critical_path`).

``python -m repro.obs.export --validate <path>`` re-checks an exported file
against the schema (used by CI after the traced smoke run).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .tracer import Observability, Span, STAGES

_PHASES = {"X", "i", "M"}


def _json_safe(labels: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value if isinstance(value, (str, int, float, bool))
            or value is None else repr(value)
            for key, value in labels.items()}


def chrome_trace(obs: Observability,
                 metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Build the Chrome trace-event object for everything ``obs`` recorded.

    Open spans are skipped (they have no duration); their count is noted in
    ``otherData`` so a truncated run is visible rather than silent.
    """
    tids: Dict[str, int] = {}

    def tid_of(track: str) -> int:
        tid = tids.get(track)
        if tid is None:
            tid = len(tids) + 1
            tids[track] = tid
        return tid

    events: List[Dict[str, Any]] = []
    open_spans = 0
    for span in obs.spans:
        if span.end is None:
            open_spans += 1
            continue
        args = _json_safe(span.labels)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start * 1000.0,
            "dur": (span.end - span.start) * 1000.0,
            "pid": 1,
            "tid": tid_of(span.track),
            "args": args,
        })
    for instant in obs.instants:
        events.append({
            "name": instant.name,
            "cat": "instant",
            "ph": "i",
            "s": "t",
            "ts": instant.at * 1000.0,
            "pid": 1,
            "tid": tid_of(instant.track),
            "args": _json_safe(instant.labels),
        })
    header: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "args": {"name": "repro simulation"},
    }]
    for track, tid in tids.items():
        header.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": track},
        })
    other: Dict[str, Any] = {
        "spans": len(obs.spans),
        "open_spans": open_spans,
        "instants": len(obs.instants),
    }
    if metadata:
        other.update(_json_safe(metadata))
    return {
        "traceEvents": header + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: Union[str, Path], obs: Observability,
                       metadata: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Serialise :func:`chrome_trace` to ``path``; returns the payload."""
    payload = chrome_trace(obs, metadata)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n",
                      encoding="utf-8")
    return payload


def merge_chrome_traces(traces: Dict[int, Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-shard Chrome traces into one multi-process trace.

    ``traces`` maps shard ids to :func:`chrome_trace` payloads (one per
    shard of a parallel run).  Each shard becomes its own ``pid`` (shard id
    + 1, since pid 0 renders oddly in viewers), keeping its per-shard thread
    ids, and the merged event list is sorted by timestamp so viewers stream
    it in order.  Metadata events stay in front, as in a single-shard trace.
    """
    header: List[Dict[str, Any]] = []
    timed: List[Dict[str, Any]] = []
    other: Dict[str, Any] = {"shards": len(traces)}
    for shard_id in sorted(traces):
        payload = traces[shard_id]
        pid = shard_id + 1
        for event in payload.get("traceEvents", []):
            event = dict(event)
            event["pid"] = pid
            if event.get("ph") == "M":
                if event.get("name") == "process_name":
                    event["args"] = {"name": f"shard {shard_id}"}
                header.append(event)
            else:
                timed.append(event)
        for key, value in payload.get("otherData", {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                other[key] = other.get(key, 0) + value
    timed.sort(key=lambda event: (event.get("ts", 0.0), event["pid"],
                                  event.get("tid", 0)))
    return {
        "traceEvents": header + timed,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(payload: Any) -> List[str]:
    """Return schema problems of a trace payload (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing event name")
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an integer")
        if phase in ("X", "i"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts must be a non-negative number")
            if not isinstance(event.get("tid"), int):
                problems.append(f"{where}: tid must be an integer")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"{where}: instant scope must be t, p or g")
    return problems


def critical_path_report(obs: Observability,
                         limit: Optional[int] = None) -> str:
    """Per-root-span stage attribution as a fixed-width text table.

    Each line's stages sum to the root's measured duration; the footer
    aggregates the share of each stage over all closed roots.
    """
    roots = [span for span in obs.roots() if span.end is not None]
    header = (f"{'span':<28} {'outcome':<8} {'start':>9} {'total':>9} "
              + " ".join(f"{stage:>9}" for stage in STAGES))
    lines = [header, "-" * len(header)]
    totals = {stage: 0.0 for stage in STAGES}
    grand_total = 0.0
    shown = roots if limit is None else roots[:limit]
    for root in shown:
        stages = obs.critical_path(root)
        committed = root.labels.get("committed")
        outcome = ("commit" if committed
                   else "abort" if committed is not None else "-")
        label = root.labels.get("txn_id", root.name)
        lines.append(
            f"{str(label):<28} {outcome:<8} {root.start:>9.2f} "
            f"{root.duration:>9.3f} "
            + " ".join(f"{stages[stage]:>9.3f}" for stage in STAGES))
    for root in roots:
        stages = obs.critical_path(root)
        grand_total += root.duration
        for stage in STAGES:
            totals[stage] += stages[stage]
    if limit is not None and len(roots) > limit:
        lines.append(f"... {len(roots) - limit} more root spans elided "
                     f"(totals below cover all {len(roots)})")
    if grand_total > 0.0:
        shares = " ".join(
            f"{stage}={100.0 * totals[stage] / grand_total:.1f}%"
            for stage in STAGES)
        lines.append(f"aggregate over {len(roots)} roots, "
                     f"{grand_total:.1f} ms total: {shares}")
    else:
        lines.append("no closed root spans recorded")
    return "\n".join(lines)


def write_critical_path_report(path: Union[str, Path],
                               obs: Observability,
                               limit: Optional[int] = 40) -> str:
    """Write :func:`critical_path_report` next to a trace; returns the text."""
    text = critical_path_report(obs, limit=limit)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text + "\n", encoding="utf-8")
    return text


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.obs.export --validate <trace.json>``"""
    parser = argparse.ArgumentParser(
        description="Validate an exported Chrome trace-event JSON file.")
    parser.add_argument("--validate", metavar="PATH", required=True,
                        help="trace file to check against the schema")
    arguments = parser.parse_args(argv)
    path = Path(arguments.validate)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"INVALID {path}: {error}")
        return 1
    problems = validate_chrome_trace(payload)
    if problems:
        print(f"INVALID {path}:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    events = len(payload["traceEvents"])
    print(f"OK {path}: {events} trace events")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
