"""Kernel profiling over the ``Simulator.enable_trace()`` seam.

The PR-5 fast path exposes one observation hook: ``enable_trace()`` records
every processed event as ``(time, queue key, event type name)``.  This module
turns such a trace into a per-event-type profile — how many events of each
class the kernel processed and how many went through the priority (interrupt)
lane — which is the input future kernel-optimisation PRs need to decide what
to attack next (``python benchmarks/bench_kernel.py --profile``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..sim.events import NORMAL_BIAS


def profile_kernel_trace(trace: Sequence[Tuple[float, int, str]]
                         ) -> Dict[str, Any]:
    """Aggregate an event trace into per-event-type counts.

    Entries whose queue key is below :data:`~repro.sim.events.NORMAL_BIAS`
    travelled the priority lane (crash interrupts and the like).
    """
    by_type: Dict[str, List[int]] = {}
    priority_events = 0
    first_at = trace[0][0] if trace else 0.0
    last_at = trace[-1][0] if trace else 0.0
    for when, key, type_name in trace:
        bucket = by_type.get(type_name)
        if bucket is None:
            bucket = by_type[type_name] = [0, 0]
        bucket[0] += 1
        if key < NORMAL_BIAS:
            bucket[1] += 1
            priority_events += 1
    return {
        "total_events": len(trace),
        "priority_events": priority_events,
        "first_event_at_ms": first_at,
        "last_event_at_ms": last_at,
        "by_type": {
            name: {"events": events, "priority": priority}
            for name, (events, priority) in sorted(
                by_type.items(), key=lambda item: (-item[1][0], item[0]))
        },
    }


def render_kernel_profile(profile: Dict[str, Any]) -> str:
    """Fixed-width table of a :func:`profile_kernel_trace` result."""
    total = profile["total_events"] or 1
    lines = [f"{'event type':<24} {'events':>10} {'share':>7} {'priority':>9}",
             "-" * 53]
    for name, row in profile["by_type"].items():
        share = 100.0 * row["events"] / total
        lines.append(f"{name:<24} {row['events']:>10} {share:>6.1f}% "
                     f"{row['priority']:>9}")
    lines.append("-" * 53)
    lines.append(f"{'total':<24} {profile['total_events']:>10} {'100.0%':>7} "
                 f"{profile['priority_events']:>9}")
    return "\n".join(lines)
