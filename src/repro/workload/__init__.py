"""Workload model: Table 4 parameters, transaction generation and clients."""

from .clients import ClosedLoopClientPool, OpenLoopClientPool
from .generator import WorkloadGenerator
from .params import PAPER_PARAMETERS, SimulationParameters

__all__ = [
    "SimulationParameters",
    "PAPER_PARAMETERS",
    "WorkloadGenerator",
    "OpenLoopClientPool",
    "ClosedLoopClientPool",
]
