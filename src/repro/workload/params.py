"""Simulation parameters (Table 4 of the paper).

:class:`SimulationParameters` collects every knob of the simulated system.
``SimulationParameters.paper()`` returns exactly the configuration of the
paper's Table 4; experiments that deviate (smaller database for unit tests,
different network latencies for ablations) construct their own instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class SimulationParameters:
    """All model parameters, with Table 4 as the canonical values."""

    #: Number of items in the database (Table 4: 10'000).
    item_count: int = 10_000
    #: Number of servers (Table 4: 9).
    server_count: int = 9
    #: Number of clients attached to each server (Table 4: 4).
    clients_per_server: int = 4
    #: Disks per server (Table 4: 2).
    disks_per_server: int = 2
    #: CPUs per server (Table 4: 2).
    cpus_per_server: int = 2
    #: Minimum / maximum number of operations per transaction (Table 4: 10–20).
    transaction_length_min: int = 10
    transaction_length_max: int = 20
    #: Probability that an operation is a write (Table 4: 50 %).
    write_probability: float = 0.5
    #: Buffer hit ratio (Table 4: 20 %).
    buffer_hit_ratio: float = 0.2
    #: Disk read time range in ms (Table 4: 4–12 ms).
    read_time_min: float = 4.0
    read_time_max: float = 12.0
    #: Disk write time range in ms (Table 4: 4–12 ms).
    write_time_min: float = 4.0
    write_time_max: float = 12.0
    #: CPU time per I/O operation in ms (Table 4: 0.4 ms).
    cpu_time_per_io: float = 0.4
    #: Network latency for a message or broadcast in ms (Table 4: 0.07 ms).
    network_latency: float = 0.07
    #: CPU time per network operation in ms (Table 4: 0.07 ms).
    cpu_time_per_network_op: float = 0.07

    # -- modelling knobs not fixed by Table 4 --------------------------------------
    #: Interval of the background WAL group-commit flusher (ms).
    log_flush_interval: float = 50.0
    #: Interval of the buffer pool write-behind flusher (ms).
    write_behind_interval: float = 50.0
    #: Maximum number of dirty (modified, not yet written) items the buffer
    #: pool holds before the apply stage is throttled.  Bounding the write
    #: cache is what keeps asynchronous disk writes honest under overload.
    buffer_max_dirty: int = 300
    #: Disk-time factor of background (write-behind) page writes relative to
    #: random in-transaction writes; models the "writes of adjacent pages
    #: scheduled together" optimisation the paper attributes to write caching
    #: (Sect. 5.1).  Swept by the ablation benchmark.
    write_behind_efficiency: float = 0.88
    #: Interval at which the lazy technique propagates update batches (ms).
    lazy_propagation_interval: float = 250.0
    #: Cost factor applied to the disk writes of *propagated* (lazy) write
    #: sets relative to delegate-side writes.  Lazy replication applies remote
    #: updates in large sequential batches, which is cheaper than the random
    #: in-place writes of the originating transaction; this factor is the
    #: explicit modelling substitution documented in DESIGN.md and swept by
    #: the ablation benchmark.
    lazy_propagation_write_factor: float = 0.45
    #: Failure-detection delay of the (perfect) failure detector (ms).
    failure_detection_delay: float = 1.0
    #: Failure-detector mode: ``"perfect"`` (oracle-driven, the default) or
    #: ``"heartbeat"`` (timeout-based, driven by real heartbeat traffic —
    #: the only mode that can see network partitions).  Heartbeat mode adds
    #: messages to the schedule, so runs are NOT bit-identical to the
    #: default — it must stay off wherever a test pins a seeded trace.
    failure_detector_mode: str = "perfect"
    #: Heartbeat send interval of the heartbeat detector (ms).
    heartbeat_period: float = 10.0
    #: Silence threshold after which the heartbeat detector suspects a
    #: member (ms); must be >= the period.
    heartbeat_timeout: float = 50.0
    #: Total-order broadcast engine the group-based techniques run on, by
    #: registry name (see :mod:`repro.gcs.engines`).  The default is the
    #: seed's fixed-sequencer scheme; ``"multi-paxos"`` selects the
    #: per-slot Paxos engine.  Not a Table 4 knob — it is the comparison
    #: axis the paper never measured.
    broadcast_engine: str = "fixed-sequencer"

    # -- partitioned-replication knobs (not in the paper) ---------------------------
    #: Number of independent replica groups the keyspace is sharded across.
    #: 1 reproduces the paper's single-group system exactly.
    partition_count: int = 1
    #: Probability that a generated transaction spans more than one partition
    #: (routed through the cross-partition 2PC coordinator).
    cross_partition_probability: float = 0.0
    #: Number of partitions a cross-partition transaction touches.
    cross_partition_span: int = 2
    #: Zipf skew exponent of item access (0 = uniform, the paper's model;
    #: larger values concentrate accesses on a hot set of items).
    zipf_skew: float = 0.0
    #: Opt-in O(1) alias-method sampling of the Zipf item distribution.
    #: The alias sampler draws the *same distribution* as the default
    #: bisect-over-cumulative-table path but consumes the ``workload.item``
    #: random stream differently, so runs are NOT bit-identical to the
    #: default — it must stay off wherever a test pins a seeded trace.
    alias_sampling: bool = False

    # -- convenience constructors -----------------------------------------------------
    @classmethod
    def paper(cls) -> "SimulationParameters":
        """The exact configuration of Table 4."""
        return cls()

    @classmethod
    def small(cls, server_count: int = 3, item_count: int = 200,
              clients_per_server: int = 2) -> "SimulationParameters":
        """A scaled-down configuration for unit tests and quick examples."""
        return cls(item_count=item_count, server_count=server_count,
                   clients_per_server=clients_per_server)

    def with_overrides(self, **overrides) -> "SimulationParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    # -- derived quantities -------------------------------------------------------------
    @property
    def total_clients(self) -> int:
        """Total number of clients in the system."""
        return self.server_count * self.clients_per_server

    @property
    def mean_transaction_length(self) -> float:
        """Expected number of operations per transaction."""
        return (self.transaction_length_min + self.transaction_length_max) / 2.0

    @property
    def mean_disk_read_time(self) -> float:
        """Expected disk read time in ms."""
        return (self.read_time_min + self.read_time_max) / 2.0

    @property
    def mean_disk_write_time(self) -> float:
        """Expected disk write time in ms."""
        return (self.write_time_min + self.write_time_max) / 2.0

    def server_names(self) -> list:
        """The conventional server names ``s1 ... sN``."""
        return [f"s{i}" for i in range(1, self.server_count + 1)]

    def as_table(self) -> Dict[str, object]:
        """Render the parameter set in the shape of the paper's Table 4."""
        return {
            "Number of items in the database": self.item_count,
            "Number of Servers": self.server_count,
            "Number of Clients per Server": self.clients_per_server,
            "Disks per Server": self.disks_per_server,
            "CPUs per Server": self.cpus_per_server,
            "Transaction Length":
                f"{self.transaction_length_min} - {self.transaction_length_max} Operations",
            "Probability that an operation is a write":
                f"{self.write_probability:.0%}",
            "Probability that an operation is a query":
                f"{1 - self.write_probability:.0%}",
            "Buffer hit ratio": f"{self.buffer_hit_ratio:.0%}",
            "Time for a read": f"{self.read_time_min:g} - {self.read_time_max:g} ms",
            "Time for a write": f"{self.write_time_min:g} - {self.write_time_max:g} ms",
            "CPU Time used for an I/O operation": f"{self.cpu_time_per_io:g} ms",
            "Time for a message or a broadcast on the Network":
                f"{self.network_latency:g} ms",
            "CPU time for a network operation":
                f"{self.cpu_time_per_network_op:g} ms",
        }


#: The canonical Table 4 parameter set, importable as a module constant.
PAPER_PARAMETERS = SimulationParameters.paper()
