"""Transaction workload generation (Table 4 of the paper).

The :class:`WorkloadGenerator` produces
:class:`~repro.db.operations.TransactionProgram` objects matching the paper's
workload model: a uniform transaction length of 10–20 operations, each
operation being a write with probability 50 % and touching an item chosen
uniformly among the 10'000 items of the database.

All draws come from dedicated named random streams of the simulator, so two
techniques evaluated with the same seed receive exactly the same sequence of
transaction programs — the common-random-numbers discipline that makes the
Fig. 9 comparison fair.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..db.operations import Operation, OperationType, TransactionProgram
from ..sim.engine import Simulator
from .params import SimulationParameters


class WorkloadGenerator:
    """Generates Table 4 transactions from the simulator's random streams."""

    def __init__(self, sim: Simulator, params: SimulationParameters,
                 item_keys: Optional[Sequence[str]] = None,
                 stream_prefix: str = "workload") -> None:
        self.sim = sim
        self.params = params
        self.stream_prefix = stream_prefix
        if item_keys is not None:
            self.item_keys: List[str] = list(item_keys)
        else:
            self.item_keys = [f"item-{index}"
                              for index in range(params.item_count)]
        if not self.item_keys:
            raise ValueError("the workload needs at least one item")
        #: Number of programs generated so far.
        self.generated_count = 0

    # -- single transactions ---------------------------------------------------------
    def next_program(self, client: str = "client") -> TransactionProgram:
        """Generate the next transaction program for ``client``."""
        length = self.sim.random.randint(
            f"{self.stream_prefix}.length",
            self.params.transaction_length_min,
            self.params.transaction_length_max)
        operations: List[Operation] = []
        for position in range(length):
            key = self.sim.random.choice(f"{self.stream_prefix}.item",
                                         self.item_keys)
            is_write = self.sim.random.bernoulli(
                f"{self.stream_prefix}.write", self.params.write_probability)
            if is_write:
                operations.append(Operation(OperationType.WRITE, key,
                                            value=f"{client}@{position}"))
            else:
                operations.append(Operation(OperationType.READ, key))
        # A transaction of only reads is fine; a transaction of only writes is
        # fine too — the mix emerges from the write probability, as in the
        # paper's simulator.
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)

    def update_only_program(self, write_count: int,
                            client: str = "client") -> TransactionProgram:
        """Generate a program with exactly ``write_count`` writes (no reads).

        Used by failure-injection scenarios that need a deterministic update
        transaction on known items.
        """
        operations = []
        for position in range(write_count):
            key = self.sim.random.choice(f"{self.stream_prefix}.item",
                                         self.item_keys)
            operations.append(Operation(OperationType.WRITE, key,
                                        value=f"{client}@{position}"))
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)

    # -- batches ------------------------------------------------------------------------
    def batch(self, count: int, client: str = "client") -> List[TransactionProgram]:
        """Generate ``count`` programs at once."""
        return [self.next_program(client=client) for _ in range(count)]

    def interarrival_time(self, load_tps: float) -> float:
        """Draw one exponential inter-arrival gap (ms) for a Poisson load.

        ``load_tps`` is the *system-wide* offered load in transactions per
        second, as plotted on the X axis of Fig. 9.
        """
        if load_tps <= 0:
            raise ValueError("load must be positive")
        rate_per_ms = load_tps / 1000.0
        return self.sim.random.expovariate(f"{self.stream_prefix}.arrival",
                                           rate_per_ms)
