"""Transaction workload generation (Table 4 of the paper).

The :class:`WorkloadGenerator` produces
:class:`~repro.db.operations.TransactionProgram` objects matching the paper's
workload model: a uniform transaction length of 10–20 operations, each
operation being a write with probability 50 % and touching an item chosen
uniformly among the 10'000 items of the database.

All draws come from dedicated named random streams of the simulator, so two
techniques evaluated with the same seed receive exactly the same sequence of
transaction programs — the common-random-numbers discipline that makes the
Fig. 9 comparison fair.  The stream handles are resolved **once** at
construction time (``self._item_stream`` etc.) instead of re-interning an
f-string name per draw: stream seeds depend only on the name, so the hoisted
handles draw bit-identical values.

Beyond the paper's uniform access model, the generator supports a Zipf-skewed
item distribution (``zipf_skew`` in :class:`SimulationParameters`): with skew
``s > 0`` item ``item-i`` is accessed with probability proportional to
``1 / (i + 1) ** s``, producing the hot-spot workloads used by the
partitioned-replication experiments.  Skew 0 reproduces the original uniform
draws bit-for-bit.

Skewed draws default to a binary search over the cumulative weight table
(O(log n) per draw).  ``SimulationParameters.alias_sampling`` opts into an
O(1) :class:`AliasSampler` (Vose's method) instead — same distribution, but
the stream is consumed differently, so seeded traces change; it is therefore
strictly opt-in and off for every pinned-figure configuration.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

from ..db.operations import Operation, OperationType, TransactionProgram
from ..sim.engine import Simulator
from .params import SimulationParameters


class AliasSampler:
    """O(1) sampling from a fixed discrete distribution (Vose's alias method).

    Construction is O(n); each draw consumes exactly one ``random()`` call
    (like one ``uniform`` draw of the bisect path) and costs two table reads.
    Deterministic: the table layout depends only on the weights.
    """

    __slots__ = ("size", "_prob", "_alias")

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("alias sampler needs at least one weight")
        size = len(weights)
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("alias sampler needs positive total weight")
        scaled = [weight * size / total for weight in weights]
        prob = [0.0] * size
        alias = [0] * size
        small: List[int] = []
        large: List[int] = []
        for index in range(size):
            (small if scaled[index] < 1.0 else large).append(index)
        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            (small if scaled[hi] < 1.0 else large).append(hi)
        for index in large:
            prob[index] = 1.0
        for index in small:
            prob[index] = 1.0
        self.size = size
        self._prob = prob
        self._alias = alias

    @classmethod
    def from_cumulative(cls, cumulative: Sequence[float]) -> "AliasSampler":
        """Build from a cumulative weight table (the bisect path's input)."""
        previous = 0.0
        weights = []
        for value in cumulative:
            weights.append(value - previous)
            previous = value
        return cls(weights)

    def sample_index(self, rng) -> int:
        """Draw one index using a single ``rng.random()`` call."""
        u = rng.random() * self.size
        index = int(u)
        if index >= self.size:  # u == size on the closed float boundary
            index = self.size - 1
        if (u - index) <= self._prob[index]:
            return index
        return self._alias[index]


class WorkloadGenerator:
    """Generates Table 4 transactions from the simulator's random streams."""

    def __init__(self, sim: Simulator, params: SimulationParameters,
                 item_keys: Optional[Sequence[str]] = None,
                 stream_prefix: str = "workload",
                 skew: Optional[float] = None) -> None:
        self.sim = sim
        self.params = params
        self.stream_prefix = stream_prefix
        if item_keys is not None:
            self.item_keys: List[str] = list(item_keys)
        else:
            self.item_keys = [f"item-{index}"
                              for index in range(params.item_count)]
        if not self.item_keys:
            raise ValueError("the workload needs at least one item")
        #: Zipf skew of item accesses (0 = the paper's uniform model).
        self.skew = params.zipf_skew if skew is None else skew
        if self.skew < 0:
            raise ValueError(f"zipf skew must be non-negative, got {self.skew!r}")
        if not 0.0 <= params.write_probability <= 1.0:
            raise ValueError(
                f"write probability out of range: {params.write_probability!r}")
        self._cumulative = (zipf_cumulative(len(self.item_keys), self.skew)
                            if self.skew > 0 else None)
        #: Opt-in O(1) sampler over the same distribution (different stream
        #: consumption — NOT bit-compatible with the bisect default).
        self.alias_sampling = bool(getattr(params, "alias_sampling", False))
        self._alias = (AliasSampler.from_cumulative(self._cumulative)
                       if self.alias_sampling and self._cumulative is not None
                       else None)
        # Interned stream handles: resolve the f-string names once, not per
        # draw.  Stream seeds depend only on the name, so this is draw-exact.
        streams = sim.random
        self._item_stream = streams.stream(f"{stream_prefix}.item")
        self._length_stream = streams.stream(f"{stream_prefix}.length")
        self._write_stream = streams.stream(f"{stream_prefix}.write")
        self._arrival_stream = streams.stream(f"{stream_prefix}.arrival")
        #: Number of programs generated so far.
        self.generated_count = 0

    # -- item selection ----------------------------------------------------------------
    def choose_key(self, keys: Optional[Sequence[str]] = None,
                   cumulative: Optional[Sequence[float]] = None,
                   alias: Optional[AliasSampler] = None) -> str:
        """Draw one item key from the (possibly Zipf-skewed) access distribution.

        Without arguments the draw is over the generator's whole keyspace;
        subclasses pass a restricted ``keys`` population (with its matching
        ``cumulative`` weight table — or ``alias`` sampler — when skewed) to
        confine a transaction to one partition.  All draws consume the same
        named stream, so the common-random-numbers discipline is preserved.
        """
        stream = self._item_stream
        if keys is None:
            population: Sequence[str] = self.item_keys
            weights = self._cumulative
            alias = self._alias
        else:
            population = keys
            weights = cumulative
        if alias is not None:
            return population[alias.sample_index(stream)]
        if weights is None:
            return stream.choice(population)
        position = stream.uniform(0.0, weights[-1])
        index = bisect_left(weights, position)
        if index >= len(population):
            index = len(population) - 1
        return population[index]

    # -- single transactions ---------------------------------------------------------
    def next_program(self, client: str = "client") -> TransactionProgram:
        """Generate the next transaction program for ``client``."""
        length = self._length_stream.randint(
            self.params.transaction_length_min,
            self.params.transaction_length_max)
        write_random = self._write_stream.random
        write_probability = self.params.write_probability
        choose_key = self.choose_key
        operations: List[Operation] = []
        append = operations.append
        for position in range(length):
            key = choose_key()
            if write_random() < write_probability:
                append(Operation(OperationType.WRITE, key,
                                 value=f"{client}@{position}"))
            else:
                append(Operation(OperationType.READ, key))
        # A transaction of only reads is fine; a transaction of only writes is
        # fine too — the mix emerges from the write probability, as in the
        # paper's simulator.
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)

    def update_only_program(self, write_count: int,
                            client: str = "client") -> TransactionProgram:
        """Generate a program with exactly ``write_count`` writes (no reads).

        Used by failure-injection scenarios that need a deterministic update
        transaction on known items.
        """
        choose_key = self.choose_key
        operations = [Operation(OperationType.WRITE, choose_key(),
                                value=f"{client}@{position}")
                      for position in range(write_count)]
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)

    # -- batches ------------------------------------------------------------------------
    def batch(self, count: int, client: str = "client") -> List[TransactionProgram]:
        """Generate ``count`` programs at once."""
        return [self.next_program(client=client) for _ in range(count)]

    def interarrival_time(self, load_tps: float) -> float:
        """Draw one exponential inter-arrival gap (ms) for a Poisson load.

        ``load_tps`` is the *system-wide* offered load in transactions per
        second, as plotted on the X axis of Fig. 9.
        """
        if load_tps <= 0:
            raise ValueError("load must be positive")
        return self._arrival_stream.expovariate(load_tps / 1000.0)


def zipf_cumulative(population_size: int, skew: float) -> List[float]:
    """Cumulative (unnormalised) Zipf weights for ranks ``1..population_size``.

    Rank ``r`` carries weight ``r ** -skew``; drawing a uniform position in
    ``[0, total]`` and bisecting into this table samples the distribution.
    """
    if population_size <= 0:
        raise ValueError("population must be non-empty")
    cumulative: List[float] = []
    total = 0.0
    for rank in range(1, population_size + 1):
        total += rank ** -skew
        cumulative.append(total)
    return cumulative
