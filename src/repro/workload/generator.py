"""Transaction workload generation (Table 4 of the paper).

The :class:`WorkloadGenerator` produces
:class:`~repro.db.operations.TransactionProgram` objects matching the paper's
workload model: a uniform transaction length of 10–20 operations, each
operation being a write with probability 50 % and touching an item chosen
uniformly among the 10'000 items of the database.

All draws come from dedicated named random streams of the simulator, so two
techniques evaluated with the same seed receive exactly the same sequence of
transaction programs — the common-random-numbers discipline that makes the
Fig. 9 comparison fair.

Beyond the paper's uniform access model, the generator supports a Zipf-skewed
item distribution (``zipf_skew`` in :class:`SimulationParameters`): with skew
``s > 0`` item ``item-i`` is accessed with probability proportional to
``1 / (i + 1) ** s``, producing the hot-spot workloads used by the
partitioned-replication experiments.  Skew 0 reproduces the original uniform
draws bit-for-bit.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence

from ..db.operations import Operation, OperationType, TransactionProgram
from ..sim.engine import Simulator
from .params import SimulationParameters


class WorkloadGenerator:
    """Generates Table 4 transactions from the simulator's random streams."""

    def __init__(self, sim: Simulator, params: SimulationParameters,
                 item_keys: Optional[Sequence[str]] = None,
                 stream_prefix: str = "workload",
                 skew: Optional[float] = None) -> None:
        self.sim = sim
        self.params = params
        self.stream_prefix = stream_prefix
        if item_keys is not None:
            self.item_keys: List[str] = list(item_keys)
        else:
            self.item_keys = [f"item-{index}"
                              for index in range(params.item_count)]
        if not self.item_keys:
            raise ValueError("the workload needs at least one item")
        #: Zipf skew of item accesses (0 = the paper's uniform model).
        self.skew = params.zipf_skew if skew is None else skew
        if self.skew < 0:
            raise ValueError(f"zipf skew must be non-negative, got {self.skew!r}")
        self._cumulative = (zipf_cumulative(len(self.item_keys), self.skew)
                            if self.skew > 0 else None)
        #: Number of programs generated so far.
        self.generated_count = 0

    # -- item selection ----------------------------------------------------------------
    def choose_key(self, keys: Optional[Sequence[str]] = None,
                   cumulative: Optional[Sequence[float]] = None) -> str:
        """Draw one item key from the (possibly Zipf-skewed) access distribution.

        Without arguments the draw is over the generator's whole keyspace;
        subclasses pass a restricted ``keys`` population (with its matching
        ``cumulative`` weight table when skewed) to confine a transaction to
        one partition.  All draws consume the same named stream, so the
        common-random-numbers discipline is preserved.
        """
        population = self.item_keys if keys is None else keys
        weights = self._cumulative if keys is None else cumulative
        if weights is None:
            return self.sim.random.choice(f"{self.stream_prefix}.item",
                                          population)
        position = self.sim.random.uniform(f"{self.stream_prefix}.item",
                                           0.0, weights[-1])
        index = bisect.bisect_left(weights, position)
        return population[min(index, len(population) - 1)]

    # -- single transactions ---------------------------------------------------------
    def next_program(self, client: str = "client") -> TransactionProgram:
        """Generate the next transaction program for ``client``."""
        length = self.sim.random.randint(
            f"{self.stream_prefix}.length",
            self.params.transaction_length_min,
            self.params.transaction_length_max)
        operations: List[Operation] = []
        for position in range(length):
            key = self.choose_key()
            is_write = self.sim.random.bernoulli(
                f"{self.stream_prefix}.write", self.params.write_probability)
            if is_write:
                operations.append(Operation(OperationType.WRITE, key,
                                            value=f"{client}@{position}"))
            else:
                operations.append(Operation(OperationType.READ, key))
        # A transaction of only reads is fine; a transaction of only writes is
        # fine too — the mix emerges from the write probability, as in the
        # paper's simulator.
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)

    def update_only_program(self, write_count: int,
                            client: str = "client") -> TransactionProgram:
        """Generate a program with exactly ``write_count`` writes (no reads).

        Used by failure-injection scenarios that need a deterministic update
        transaction on known items.
        """
        operations = []
        for position in range(write_count):
            key = self.choose_key()
            operations.append(Operation(OperationType.WRITE, key,
                                        value=f"{client}@{position}"))
        self.generated_count += 1
        return TransactionProgram(operations=tuple(operations), client=client)

    # -- batches ------------------------------------------------------------------------
    def batch(self, count: int, client: str = "client") -> List[TransactionProgram]:
        """Generate ``count`` programs at once."""
        return [self.next_program(client=client) for _ in range(count)]

    def interarrival_time(self, load_tps: float) -> float:
        """Draw one exponential inter-arrival gap (ms) for a Poisson load.

        ``load_tps`` is the *system-wide* offered load in transactions per
        second, as plotted on the X axis of Fig. 9.
        """
        if load_tps <= 0:
            raise ValueError("load must be positive")
        rate_per_ms = load_tps / 1000.0
        return self.sim.random.expovariate(f"{self.stream_prefix}.arrival",
                                           rate_per_ms)


def zipf_cumulative(population_size: int, skew: float) -> List[float]:
    """Cumulative (unnormalised) Zipf weights for ranks ``1..population_size``.

    Rank ``r`` carries weight ``r ** -skew``; drawing a uniform position in
    ``[0, total]`` and bisecting into this table samples the distribution.
    """
    if population_size <= 0:
        raise ValueError("population must be non-empty")
    cumulative: List[float] = []
    total = 0.0
    for rank in range(1, population_size + 1):
        total += rank ** -skew
        cumulative.append(total)
    return cumulative
