"""Client models driving a replicated database cluster.

Two client models are provided:

* :class:`OpenLoopClientPool` — transactions arrive as a Poisson process with
  a configurable system-wide rate, split across the servers according to the
  cluster's routing policy.  This is what the Fig. 9 experiment uses, because
  it puts the exact offered load of the X axis on the system regardless of the
  response times.
* :class:`ClosedLoopClientPool` — the Table 4 client model taken literally:
  ``clients_per_server`` clients per server, each submitting a new transaction
  a think time after the previous one completed.  Used by tests and by the
  ablation that checks both client models give the same ordering of the
  techniques.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..replication.results import TransactionResult
from ..sim.engine import Simulator
from .generator import WorkloadGenerator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..replication.cluster import ReplicatedDatabaseCluster


class _ClientPoolBase:
    """Shared bookkeeping of both client pools."""

    def __init__(self, cluster: "ReplicatedDatabaseCluster",
                 warmup: float = 0.0) -> None:
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.workload: WorkloadGenerator = cluster.workload
        self.warmup = warmup
        #: Results observed by the clients after the warm-up period.
        self.results: List[TransactionResult] = []
        #: Results discarded because they started during warm-up.
        self.warmup_results: List[TransactionResult] = []
        self.submitted_count = 0

    def _record(self, result: TransactionResult, submitted_at: float) -> None:
        if submitted_at >= self.warmup:
            self.results.append(result)
        else:
            self.warmup_results.append(result)

    # -- derived statistics -------------------------------------------------------
    @property
    def committed(self) -> List[TransactionResult]:
        """Committed results observed after warm-up."""
        return [result for result in self.results if result.committed]

    @property
    def aborted(self) -> List[TransactionResult]:
        """Aborted results observed after warm-up."""
        return [result for result in self.results if not result.committed]

    def mean_response_time(self) -> float:
        """Mean response time (ms) of committed transactions after warm-up."""
        committed = self.committed
        if not committed:
            return 0.0
        return sum(result.response_time for result in committed) / len(committed)

    def abort_rate(self) -> float:
        """Fraction of post-warm-up transactions that aborted."""
        total = len(self.results)
        return len(self.aborted) / total if total else 0.0


class OpenLoopClientPool(_ClientPoolBase):
    """Poisson arrivals at a fixed system-wide rate (Fig. 9's X axis)."""

    def __init__(self, cluster: "ReplicatedDatabaseCluster", load_tps: float,
                 warmup: float = 0.0) -> None:
        super().__init__(cluster, warmup=warmup)
        if load_tps <= 0:
            raise ValueError("load must be positive")
        self.load_tps = load_tps
        self._next_client = 0

    def start(self) -> None:
        """Start the arrival process."""
        self.sim.spawn(self._arrivals(), name="clients.open_loop")

    def _arrivals(self):
        while True:
            gap = self.workload.interarrival_time(self.load_tps)
            yield self.sim.timeout(gap)
            client_index = self._next_client
            self._next_client += 1
            delegate = self.cluster.choose_delegate(client_index)
            if not self.cluster.node(delegate).is_up:
                continue
            program = self.workload.next_program(client=f"client-{client_index}")
            self.sim.spawn(self._one_transaction(program, delegate),
                           name=f"client.txn.{program.program_id}")

    def _one_transaction(self, program, delegate):
        submitted_at = self.sim.now
        self.submitted_count += 1
        result = yield self.cluster.submit(program, server=delegate)
        self._record(result, submitted_at)


class ClosedLoopClientPool(_ClientPoolBase):
    """Table 4's client model: N clients per server with exponential think time."""

    def __init__(self, cluster: "ReplicatedDatabaseCluster",
                 think_time_mean: float, warmup: float = 0.0,
                 clients_per_server: Optional[int] = None) -> None:
        super().__init__(cluster, warmup=warmup)
        if think_time_mean <= 0:
            raise ValueError("think time must be positive")
        self.think_time_mean = think_time_mean
        self.clients_per_server = clients_per_server or \
            cluster.params.clients_per_server

    def start(self) -> None:
        """Start every client process."""
        for server_index, server in enumerate(self.cluster.server_names()):
            for client_index in range(self.clients_per_server):
                name = f"client-{server_index}-{client_index}"
                self.sim.spawn(self._client_loop(server, name),
                               name=f"clients.{name}")

    def _client_loop(self, server: str, client_name: str):
        think_stream = self.sim.random.stream(f"clients.{client_name}.think")
        think_rate = 1.0 / self.think_time_mean
        while True:
            yield self.sim.timeout(think_stream.expovariate(think_rate))
            if not self.cluster.node(server).is_up:
                continue
            program = self.workload.next_program(client=client_name)
            submitted_at = self.sim.now
            self.submitted_count += 1
            result = yield self.cluster.submit(program, server=server)
            self._record(result, submitted_at)

    @classmethod
    def for_target_load(cls, cluster: "ReplicatedDatabaseCluster",
                        load_tps: float, expected_response_time: float = 100.0,
                        warmup: float = 0.0) -> "ClosedLoopClientPool":
        """Build a pool whose think time approximately offers ``load_tps``.

        With N clients, offered load ≈ N / (think + response); the think time
        is derived from the target load and an expected response time.
        """
        clients = cluster.params.total_clients
        cycle_time_ms = clients / load_tps * 1000.0
        think = max(1.0, cycle_time_ms - expected_response_time)
        return cls(cluster, think_time_mean=think, warmup=warmup)
