"""Benchmark: the full partitioned failure-injection matrix (Tables 2/3).

Runs every (technique, crash pattern) cell of the partitioned matrix — the
single-group Table 2/3 patterns replayed inside one shard, the 2PC
coordinator crashes on either side of the forced decision record, and the
three mid-migration crash points — and enforces the acceptance bars of the
partitioned failure-injection ISSUE:

* at least five partitioned crash patterns run, including a whole-shard
  outage, a coordinator crash and two mid-migration crash points;
* zero soundness violations: no cell predicted "No Transaction Loss" ever
  observes a loss, and every cell's invariants (2PC atomicity, every client
  answered, routing-map crash consistency, post-pattern availability) hold;
* at least one predicted-possible-loss cell demonstrates a concrete losing
  schedule, and 2-safe never loses anywhere.
"""

from __future__ import annotations

from repro.experiments import (PARTITIONED_CRASH_PATTERNS,
                               missing_pattern_classes,
                               partitioned_demonstrated_losses,
                               partitioned_soundness_violations,
                               render_partitioned_matrix,
                               run_partitioned_failure_matrix)

from conftest import write_report


def test_partitioned_failure_matrix_is_sound_and_demonstrates(benchmark):
    entries = benchmark.pedantic(
        lambda: run_partitioned_failure_matrix(seed=2), rounds=1,
        iterations=1)

    # Coverage: all five techniques over the full pattern taxonomy.
    assert len(entries) == 5 * len(PARTITIONED_CRASH_PATTERNS)
    assert len({entry.crash_pattern for entry in entries}) >= 5
    assert missing_pattern_classes(entries) == []

    # Soundness: no "No Transaction Loss" cell lost, no invariant broke.
    assert partitioned_soundness_violations(entries) == []

    # Demonstration: the possible-loss cells that should lose actually do.
    demonstrated = {(entry.technique, entry.crash_pattern)
                    for entry in partitioned_demonstrated_losses(entries)}
    assert ("group-safe", "shard-outage") in demonstrated
    assert ("group-1-safe", "shard-outage") in demonstrated
    assert ("1-safe", "shard-delegate") in demonstrated
    assert not any(technique == "2-safe" for technique, _ in demonstrated)

    # The contained-outage dividend: every cell's unaffected shards kept
    # serving while the pattern ran.
    assert all(entry.outcome.fresh_commit_ok for entry in entries)

    write_report("partition_failure_matrix",
                 render_partitioned_matrix(entries))
