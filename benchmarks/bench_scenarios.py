"""Benchmarks regenerating the Fig. 5 / Fig. 7 scenarios and the failure matrix
(experiments E1, E2 and the measured side of E4/E5)."""

from __future__ import annotations

from repro.experiments import (crash_tolerance_summary, demonstrated_losses,
                               figure5_scenario, figure7_scenario,
                               render_matrix, run_failure_matrix,
                               soundness_violations)

from conftest import write_report


def test_fig5_lost_transaction(benchmark):
    """Fig. 5: classical atomic broadcast loses a confirmed transaction."""
    outcome = benchmark.pedantic(figure5_scenario, rounds=1, iterations=1)
    assert outcome.confirmed
    assert outcome.transaction_lost
    assert outcome.committed_on == ["s1"]
    write_report("fig5_scenario", (
        "Fig. 5 — unrecoverable failure with classical atomic broadcast\n"
        f"technique          : {outcome.technique}\n"
        f"client confirmed   : {outcome.confirmed}\n"
        f"servers crashed    : {outcome.crashed_servers}\n"
        f"servers recovered  : {outcome.recovered_servers}\n"
        f"committed on       : {outcome.committed_on}\n"
        f"transaction lost   : {outcome.transaction_lost}  (paper: lost)"))


def test_fig7_recovered_transaction(benchmark):
    """Fig. 7: end-to-end atomic broadcast replays and recovers it."""
    outcome = benchmark.pedantic(figure7_scenario, rounds=1, iterations=1)
    assert outcome.confirmed
    assert not outcome.transaction_lost
    assert set(outcome.committed_on) >= {"s2", "s3"}
    write_report("fig7_scenario", (
        "Fig. 7 — recovery with end-to-end atomic broadcast\n"
        f"technique          : {outcome.technique}\n"
        f"client confirmed   : {outcome.confirmed}\n"
        f"servers crashed    : {outcome.crashed_servers}\n"
        f"servers recovered  : {outcome.recovered_servers}\n"
        f"committed on       : {outcome.committed_on}\n"
        f"transaction lost   : {outcome.transaction_lost}  (paper: recovered)"))


def test_failure_matrix_tables_2_and_3(benchmark):
    """Measured counterpart of Tables 2/3: inject crashes, audit the losses."""
    entries = benchmark.pedantic(run_failure_matrix, rounds=1, iterations=1)
    assert soundness_violations(entries) == []
    demonstrated = {(entry.technique, entry.crash_pattern)
                    for entry in demonstrated_losses(entries)}
    assert ("1-safe", "delegate") in demonstrated
    assert ("group-safe", "all-delegate-stays-down") in demonstrated
    assert not any(technique == "2-safe" for technique, _pattern in demonstrated)
    tolerance = crash_tolerance_summary(entries)
    assert tolerance["2-safe"] == 3
    write_report("tables_2_3_failure_matrix", render_matrix(entries))
