"""Benchmark regenerating Fig. 9 (experiments E7 and E8).

The full paper figure sweeps 20–40 tps in steps of 2 for three techniques on
the Table 4 configuration; that takes several minutes of wall-clock time, so
the benchmark uses a reduced grid (five loads) and a shorter measured window.
The *shape* checks mirror the claims of the paper's Sect. 6:

* group-safe replication outperforms both group-1-safe and lazy replication
  at low and moderate load;
* group-1-safe replication degrades fastest as the load grows;
* towards the top of the 20–40 tps window the group-safe curve turns upward
  and loses its advantage over lazy replication (the paper puts the
  crossover at 38 tps);
* the group-safe abort rate stays small (the paper reports a constant rate
  slightly below 7 %).

``examples/reproduce_figure9.py`` runs the full-resolution sweep.
"""

from __future__ import annotations

import pytest

from repro.experiments import (crossover_load, curves, figure9_sweep,
                               render_figure9)

from conftest import write_report

#: Reduced sweep used by the benchmark (full grid in examples/).
BENCH_LOADS = (20.0, 26.0, 32.0, 38.0, 40.0)
BENCH_DURATION_MS = 12_000.0
BENCH_WARMUP_MS = 3_000.0


@pytest.fixture(scope="module")
def sweep_points():
    return figure9_sweep(loads=BENCH_LOADS,
                         techniques=("group-safe", "group-1-safe", "1-safe"),
                         duration_ms=BENCH_DURATION_MS,
                         warmup_ms=BENCH_WARMUP_MS, seed=1)


def test_figure9_sweep(benchmark, sweep_points):
    """Time one load point and report the whole reduced figure."""
    from repro.experiments import run_load_point

    benchmark.pedantic(
        run_load_point, args=("group-safe", 26.0),
        kwargs=dict(duration_ms=6_000.0, warmup_ms=1_500.0, seed=2),
        rounds=1, iterations=1)

    series = curves(sweep_points)
    write_report("figure9_response_time_vs_load", render_figure9(sweep_points))

    group_safe = {p.offered_load_tps: p for p in series["group-safe"]}
    group_one = {p.offered_load_tps: p for p in series["group-1-safe"]}
    lazy = {p.offered_load_tps: p for p in series["1-safe"]}

    # Low / moderate load: group-safe beats lazy, which beats group-1-safe
    # (the paper's ordering at the left of Fig. 9).
    for load in (20.0, 26.0, 32.0):
        assert group_safe[load].mean_response_time_ms \
            < lazy[load].mean_response_time_ms
        assert group_safe[load].mean_response_time_ms \
            < group_one[load].mean_response_time_ms

    # Group-1-safe scales poorly: by the top of the window it is the worst
    # technique by a wide margin.
    assert group_one[40.0].mean_response_time_ms \
        > 2.0 * lazy[40.0].mean_response_time_ms
    assert group_one[40.0].mean_response_time_ms \
        > group_one[20.0].mean_response_time_ms * 3.0

    # Group-safe loses its advantage over lazy replication near the top of
    # the load range (paper: crossover at 38 tps).
    crossover = crossover_load(sweep_points, "group-safe", "1-safe")
    assert crossover is not None and crossover >= 34.0


def test_figure9_abort_rate(benchmark, sweep_points):
    """Sect. 6: the group-safe abort rate stays small across the sweep."""
    series = benchmark(curves, sweep_points)
    group_safe_rates = [point.abort_rate for point in series["group-safe"]]
    assert max(group_safe_rates) < 0.10          # paper: slightly below 7 %
    moderate = [point.abort_rate for point in series["group-safe"]
                if point.offered_load_tps <= 32.0]
    assert max(moderate) - min(moderate) < 0.05  # roughly constant
    lines = ["group-safe abort rate per offered load:"]
    for point in series["group-safe"]:
        lines.append(f"  {point.offered_load_tps:>4g} tps : "
                     f"{point.abort_rate:6.2%}")
    lines.append("paper reports: constant, slightly below 7 %")
    write_report("figure9_abort_rate", "\n".join(lines))
