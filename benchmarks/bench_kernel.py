"""Wall-clock benchmark of the simulation kernel (the perf-trajectory file).

Unlike the other benchmarks — which measure *simulated* quantities
(throughput in committed transactions per simulated second, response times in
simulated milliseconds) — this harness measures how fast the kernel pushes
simulated events per **wall-clock** second.  Every experiment in the
reproduction is gated by that number: the Fig. 9 sweep, the 45-cell
partitioned failure matrix and the autobalance runs all spend their time in
the event loop, so a 2x faster kernel means 2x the scenarios per CI minute.

Three representative scenarios cover the three layers of the system:

* ``one_shard_saturation`` — the paper's own Table 4 topology (9 servers,
  group-safe) at a saturating open-loop load: atomic broadcast, WAL flushes,
  buffer-pool traffic.
* ``partitioned_zipf`` — 4 range-sharded groups under a Zipf-1.1 skew with
  10 % cross-partition 2PC traffic: routing, classification and the
  coordinator on top of the kernel.
* ``autobalance_shift`` — the hotspot-shift experiment with the rebalance
  controller live: migrations, fences and epoch bumps mid-run.

Outputs:

* ``BENCH_kernel.json`` (repo root in full mode, the report directory in
  ``--smoke`` mode) — machine-readable before/after numbers future kernel
  PRs regress against;
* ``benchmarks/benchmark_reports/bench_kernel.txt`` — the human report.

Regression gate: unless ``BENCH_KERNEL_SKIP_GATE=1`` (noisy runners) or
``--no-gate`` is passed, the run fails if any scenario's events/sec drops
more than ``BENCH_KERNEL_TOLERANCE`` (default 0.30) below the committed
numbers.  Capture a new baseline on the *unoptimised* kernel with
``--capture-baseline``; ordinary runs preserve the stored baseline and only
refresh the ``current`` section.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.kernel import (profile_kernel_trace,  # noqa: E402
                              render_kernel_profile)
from repro.partition.cluster import PartitionedCluster  # noqa: E402
from repro.partition.controller import RebalanceController  # noqa: E402
from repro.partition.workload import PartitionedOpenLoopClients  # noqa: E402
from repro.replication.cluster import ReplicatedDatabaseCluster  # noqa: E402
from repro.workload.clients import OpenLoopClientPool  # noqa: E402
from repro.workload.params import SimulationParameters  # noqa: E402

DEFAULT_JSON = REPO_ROOT / "BENCH_kernel.json"
REPORT_DIR = REPO_ROOT / "benchmarks" / "benchmark_reports"
SMOKE_JSON = REPORT_DIR / "BENCH_kernel.json"
DEFAULT_TOLERANCE = 0.30


def _event_count(sim) -> int:
    """Total events scheduled by ``sim`` (available on old and new kernels)."""
    return getattr(sim, "scheduled_events", None) or sim._sequence


def _summary(sim, commits: int, sim_ms: float, wall_s: float,
             trace=None) -> Dict[str, float]:
    events = _event_count(sim)
    summary = {
        "events": events,
        "committed_txns": commits,
        "simulated_ms": sim_ms,
        "wall_seconds": round(wall_s, 3),
        "events_per_sec": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "commits_per_sec": round(commits / wall_s, 1) if wall_s > 0 else 0.0,
    }
    if trace is not None:
        summary["profile"] = profile_kernel_trace(trace)
    return summary


# -- scenarios --------------------------------------------------------------------------


def one_shard_saturation(smoke: bool, profile: bool = False,
                         engine: str = "fixed-sequencer") -> Dict[str, float]:
    """Table 4 group-safe topology at a saturating open-loop load."""
    duration_ms = 4_000.0 if smoke else 20_000.0
    params = SimulationParameters.paper().with_overrides(
        broadcast_engine=engine)
    cluster = ReplicatedDatabaseCluster("group-safe", params=params, seed=11)
    trace = cluster.sim.enable_trace() if profile else None
    cluster.start()
    clients = OpenLoopClientPool(cluster, load_tps=40.0, warmup=0.0)
    clients.start()
    started = time.perf_counter()
    cluster.run(until=duration_ms)
    wall = time.perf_counter() - started
    return _summary(cluster.sim, len(clients.committed), duration_ms, wall,
                    trace=trace)


def partitioned_zipf(smoke: bool, profile: bool = False,
                     engine: str = "fixed-sequencer") -> Dict[str, float]:
    """4 range shards, Zipf-1.1 skew, 10% cross-partition 2PC traffic."""
    duration_ms = 3_000.0 if smoke else 12_000.0
    params = SimulationParameters.small(server_count=3,
                                        item_count=2_000).with_overrides(
        partition_count=4, zipf_skew=1.1, cross_partition_probability=0.1,
        broadcast_engine=engine)
    cluster = PartitionedCluster("group-safe", params=params, seed=17,
                                 strategy="range")
    trace = cluster.sim.enable_trace() if profile else None
    cluster.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=300.0, warmup=0.0)
    clients.start()
    started = time.perf_counter()
    cluster.run(until=duration_ms)
    wall = time.perf_counter() - started
    return _summary(cluster.sim, clients.committed_count, duration_ms, wall,
                    trace=trace)


def autobalance_shift(smoke: bool, profile: bool = False,
                      engine: str = "fixed-sequencer") -> Dict[str, float]:
    """Hotspot shift repaired by the live rebalance controller."""
    duration_ms = 8_000.0 if smoke else 17_000.0
    shift_at_ms = duration_ms * 0.35
    items = 240 if smoke else 400
    params = SimulationParameters.small(server_count=3,
                                        item_count=items).with_overrides(
        partition_count=4, zipf_skew=1.1, cross_partition_probability=0.05,
        broadcast_engine=engine)
    cluster = PartitionedCluster("group-safe", params=params, seed=33,
                                 strategy="range")
    trace = cluster.sim.enable_trace() if profile else None
    cluster.start()
    controller = RebalanceController(cluster, window_ms=500.0,
                                     share_threshold=0.45,
                                     cooldown_windows=2, hysteresis_windows=4)
    controller.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=150.0,
                                         warmup=0.0)
    clients.start()
    started = time.perf_counter()
    cluster.run(until=shift_at_ms)
    cluster.workload.shift_hotspot(items // 2)
    cluster.run(until=duration_ms)
    wall = time.perf_counter() - started
    return _summary(cluster.sim, clients.committed_count, duration_ms, wall,
                    trace=trace)


def parallel_sharded(smoke: bool, profile: bool = False,
                     engine: str = "fixed-sequencer") -> Dict[str, float]:
    """16 shards as parallel worker processes under conservative sync.

    Runs the same scenario twice — on the serial in-process reference engine
    and on the process-pool engine — and reports the *aggregate* events/sec
    of the better run as the headline (so the gate tracks the machine's best
    execution mode), with both sub-rates and the parallel-over-serial
    speedup recorded alongside.  Shard-world construction is timed separately
    and excluded from the rate: the benchmark measures the event loop.

    Full mode is the ROADMAP scale target: 16 shards x 65,536 keys =
    1,048,576 keys.  Smoke mode shrinks the worlds and uses 2 workers so
    shared CI runners finish quickly.
    """
    from dataclasses import replace as _replace

    from repro.partition.parallel_cluster import (ShardScenario,
                                                  build_shard_world,
                                                  run_parallel_sharded)
    if smoke:
        scenario = ShardScenario(
            technique="group-safe", shard_count=4, seed=23,
            items_per_shard=2_048, servers_per_shard=3,
            load_tps_per_shard=300.0, cross_shard_probability=0.1,
            cross_shard_latency=8.0, duration_ms=2_000.0,
            broadcast_engine=engine)
        workers = 2
    else:
        scenario = ShardScenario(
            technique="group-safe", shard_count=16, seed=23,
            items_per_shard=65_536, servers_per_shard=3,
            load_tps_per_shard=300.0, cross_shard_probability=0.1,
            cross_shard_latency=8.0, duration_ms=4_000.0,
            broadcast_engine=engine)
        workers = min(os.cpu_count() or 1, scenario.shard_count)
    if profile:
        # Profile one shard world in isolation (the window protocol adds no
        # simulated events of its own, so the event mix is the shard's).
        world = build_shard_world(
            0, _replace(scenario, shard_count=1, trace=True))
        world.sim.run(until=scenario.duration_ms)
        return {"profile": profile_kernel_trace(world._trace)}

    serial = run_parallel_sharded(scenario, workers=0)
    parallel = run_parallel_sharded(scenario, workers=workers)
    assert parallel.total_events == serial.total_events, \
        "parallel run diverged from the serial reference"
    events = serial.total_events
    serial_rate = events / serial.run_seconds if serial.run_seconds else 0.0
    parallel_rate = (events / parallel.run_seconds
                     if parallel.run_seconds else 0.0)
    best = serial if serial_rate >= parallel_rate else parallel
    commits = best.statistics.measured_commits
    return {
        "events": events,
        "committed_txns": commits,
        "simulated_ms": scenario.duration_ms,
        "wall_seconds": round(best.run_seconds, 3),
        "events_per_sec": round(max(serial_rate, parallel_rate), 1),
        "commits_per_sec": (round(commits / best.run_seconds, 1)
                            if best.run_seconds else 0.0),
        "serial_events_per_sec": round(serial_rate, 1),
        "parallel_events_per_sec": round(parallel_rate, 1),
        "parallel_workers": parallel.workers,
        "speedup_vs_serial": (round(parallel_rate / serial_rate, 2)
                              if serial_rate else None),
        "shards": scenario.shard_count,
        "total_keys": scenario.shard_count * scenario.items_per_shard,
        "sync_windows": serial.windows,
        "cross_shard_messages": serial.messages,
        "build_seconds": {"serial": round(serial.build_seconds, 3),
                          "parallel": round(parallel.build_seconds, 3)},
    }


SCENARIOS = {
    "one_shard_saturation": one_shard_saturation,
    "partitioned_zipf": partitioned_zipf,
    "autobalance_shift": autobalance_shift,
    "parallel_sharded": parallel_sharded,
}


# -- persistence and gating -------------------------------------------------------------


def load_previous(path: Path) -> Dict[str, Dict]:
    if not path.exists():
        return {}
    try:
        return json.loads(path.read_text()).get("scenarios", {})
    except (json.JSONDecodeError, OSError):
        return {}


def regression_failures(previous: Dict[str, Dict], fresh: Dict[str, Dict],
                        tolerance: float) -> list:
    """Scenarios whose fresh events/sec fell below the committed floor."""
    failures = []
    for name, run in fresh.items():
        entry = previous.get(name, {})
        reference = entry.get("current") or entry.get("baseline")
        if not reference:
            continue
        floor = reference["events_per_sec"] * (1.0 - tolerance)
        if run["events_per_sec"] < floor:
            failures.append(
                f"{name}: {run['events_per_sec']:.0f} events/s is more than "
                f"{tolerance:.0%} below the committed "
                f"{reference['events_per_sec']:.0f} events/s")
    return failures


def render_report(scenarios: Dict[str, Dict], mode: str,
                  engine: str = "fixed-sequencer") -> str:
    lines = [
        f"Simulation-kernel wall-clock benchmark ({mode} mode, "
        f"{engine} engine)",
        "",
        f"{'scenario':>22} | {'events/s':>12} | {'baseline':>12} | "
        f"{'speedup':>8} | {'commits/s':>10} | {'sim ms':>8} | {'wall s':>7}",
        "-" * 96,
    ]
    for name, entry in scenarios.items():
        current = entry.get("current") or {}
        baseline = entry.get("baseline") or {}
        speedup = entry.get("speedup_events_per_sec")
        lines.append(
            f"{name:>22} | {current.get('events_per_sec', 0.0):>12,.0f} | "
            f"{baseline.get('events_per_sec', 0.0):>12,.0f} | "
            f"{(f'{speedup:.2f}x' if speedup else '—'):>8} | "
            f"{current.get('commits_per_sec', 0.0):>10,.1f} | "
            f"{current.get('simulated_ms', 0.0):>8,.0f} | "
            f"{current.get('wall_seconds', 0.0):>7.2f}")
    lines += [
        "",
        "events/s: simulated events scheduled per wall-clock second (the",
        "kernel-speed headline).  baseline: the pre-optimisation kernel on",
        "the same machine.  Kernel PRs must keep every scenario within the",
        "regression tolerance of the committed numbers (BENCH_kernel.json).",
    ]
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short runs for CI; writes the JSON next to the "
                             "reports instead of the repo root")
    parser.add_argument("--capture-baseline", action="store_true",
                        help="record this run as the pre-optimisation "
                             "baseline (refuses to overwrite an existing "
                             "baseline unless --force is given)")
    parser.add_argument("--force", action="store_true",
                        help="allow --capture-baseline to overwrite a "
                             "previously captured baseline")
    parser.add_argument("--json", type=Path, default=None,
                        help="output path of the machine-readable results")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per scenario in full mode; "
                             "the best (least-interference) run is reported")
    parser.add_argument("--no-gate", action="store_true",
                        help="skip the events/sec regression gate")
    parser.add_argument("--profile", action="store_true",
                        help="run each scenario once with kernel tracing on "
                             "and print a per-event-type profile (no timing "
                             "gate; traced runs are slower by design)")
    from repro.gcs.engines import DEFAULT_ENGINE, engine_names
    parser.add_argument("--engine", default=DEFAULT_ENGINE,
                        choices=engine_names(),
                        help="total-order broadcast engine the group-based "
                             "scenarios run on; non-default engines have "
                             "their own event mix, so the regression gate "
                             "only applies to the default")
    arguments = parser.parse_args(argv)

    if arguments.profile:
        for name, scenario in SCENARIOS.items():
            print(f"profiling {name}...", flush=True)
            run = scenario(arguments.smoke, profile=True,
                           engine=arguments.engine)
            print(render_kernel_profile(run["profile"]))
            print()
        return 0

    if arguments.json:
        json_path = arguments.json
    elif arguments.engine != DEFAULT_ENGINE:
        # Keep non-default-engine numbers out of the committed gate file:
        # their event mix is different, so they are not regression evidence.
        json_path = REPORT_DIR / f"BENCH_kernel.{arguments.engine}.json"
    else:
        json_path = SMOKE_JSON if arguments.smoke else DEFAULT_JSON
    mode = "smoke" if arguments.smoke else "full"
    committed = load_previous(DEFAULT_JSON)

    if arguments.capture_baseline and not arguments.force:
        existing = load_previous(json_path)
        captured = [name for name, entry in existing.items()
                    if entry.get("baseline")]
        if captured:
            print(f"refusing to overwrite the captured baseline of "
                  f"{len(captured)} scenario(s) in {json_path} "
                  f"({', '.join(sorted(captured))}).")
            print("Re-run with --force to overwrite it, or with --json to "
                  "write the capture to a side file.")
            return 2

    repeats = 1 if arguments.smoke else arguments.repeats
    fresh: Dict[str, Dict] = {}
    for name, scenario in SCENARIOS.items():
        print(f"running {name} ({mode}, best of {repeats})...", flush=True)
        best: Optional[Dict] = None
        for _attempt in range(repeats):
            run = scenario(arguments.smoke, engine=arguments.engine)
            if best is None or run["events_per_sec"] > best["events_per_sec"]:
                best = run
        fresh[name] = best
        print(f"  {best['events_per_sec']:,.0f} events/s, "
              f"{best['commits_per_sec']:.1f} commits/s "
              f"({best['wall_seconds']:.2f}s wall)", flush=True)

    scenarios: Dict[str, Dict] = {}
    for name, run in fresh.items():
        if arguments.capture_baseline:
            scenarios[name] = {"baseline": run, "current": None,
                               "speedup_events_per_sec": None}
            continue
        baseline = committed.get(name, {}).get("baseline")
        speedup = (round(run["events_per_sec"] / baseline["events_per_sec"], 2)
                   if baseline and baseline["events_per_sec"] else None)
        scenarios[name] = {"baseline": baseline, "current": run,
                           "speedup_events_per_sec": speedup}

    payload = {
        "schema": 1,
        "mode": mode,
        "engine": arguments.engine,
        "note": "events/s are wall-clock rates; baseline is the "
                "pre-optimisation kernel on the same machine",
        "scenarios": scenarios,
    }
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    report = render_report(scenarios, mode, engine=arguments.engine)
    print()
    print(report)
    REPORT_DIR.mkdir(parents=True, exist_ok=True)
    report_name = ("bench_kernel_smoke.txt" if arguments.smoke
                   else "bench_kernel.txt")
    (REPORT_DIR / report_name).write_text(report + "\n", encoding="utf-8")
    print(f"\nwrote {json_path}")

    gate_disabled = (arguments.no_gate or arguments.capture_baseline
                     or arguments.engine != DEFAULT_ENGINE
                     or os.environ.get("BENCH_KERNEL_SKIP_GATE") == "1")
    if not gate_disabled:
        tolerance = float(os.environ.get("BENCH_KERNEL_TOLERANCE",
                                         DEFAULT_TOLERANCE))
        failures = regression_failures(committed, fresh, tolerance)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            print("(set BENCH_KERNEL_SKIP_GATE=1 to override on noisy "
                  "runners)")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
