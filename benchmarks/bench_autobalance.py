"""Benchmark: the autobalance controller repairing a Zipf-hotspot shift.

The rebalance benchmark shows one *operator-triggered* migration repairing
a skewed keyspace; this one removes the operator.  A
:class:`~repro.partition.controller.RebalanceController` watches windowed
per-shard load while the workload's Zipf ranking is rotated mid-run
(the hot head jumps to the middle of the keyspace, landing on a different
group under the epoch-0 map) — and must detect and repair both the initial
skew and the injected shift on its own.

Acceptance bars (the ISSUE acceptance criteria):

* the controller triggers without operator action and a migration covering
  the shifted hot head completes, verified;
* recovered committed throughput is at least 1.5x the static map's on the
  identically seeded run;
* zero lost / duplicated commits in the per-key commit-integrity audit;
* the fence duration of the controller's migrations does not regress
  against the operator-triggered migration of ``bench_rebalance.py``.
"""

from __future__ import annotations

from repro.experiments import (render_autobalance_report,
                               run_autobalance_experiment,
                               run_rebalance_experiment)

from conftest import write_report


def all_runs():
    static = run_autobalance_experiment(controlled=False)
    controlled = run_autobalance_experiment(controlled=True)
    # The operator-triggered migration is the fence-duration baseline.
    reference = run_rebalance_experiment(rebalance=True)
    return static, controlled, reference


def test_controller_repairs_a_hotspot_shift_without_an_operator(benchmark):
    static, controlled, reference = benchmark.pedantic(all_runs, rounds=1,
                                                       iterations=1)

    # The static map ran untouched; every move was controller-initiated.
    assert not static.migrations
    stats = controlled.controller_stats
    assert stats is not None
    assert stats.rebalances_triggered >= 2      # initial skew + the shift
    assert stats.rebalances_triggered == len(stats.moves)
    # The damping mechanisms measurably intervened (no naive every-window
    # controller would produce these).
    assert stats.skipped_below_threshold + stats.skipped_cooldown > 0

    # A completed, verified migration covers the shifted hot head.
    completed = controlled.completed_migrations
    assert completed and all(report.verified for report in completed)
    shifted_head = 200                          # items // 2 of the default
    assert any(report.key_range.contains(shifted_head)
               for report in completed)

    # Zero lost / duplicated commits (per-key commit audit), both runs.
    assert static.audit_ok, static.audit_failures
    assert controlled.audit_ok, controlled.audit_failures

    # Headline: the controller restores >= 1.5x the static map's committed
    # throughput after the hotspot shift, without operator action.
    assert controlled.recovered_tput >= 1.5 * static.recovered_tput

    # The overlapped, throttled copy must not widen the write fence: no
    # controller-driven migration fences longer than the operator-triggered
    # baseline migration of bench_rebalance.py.
    assert reference.migration is not None
    reference_fence = reference.migration.fence_duration_ms
    assert max(report.fence_duration_ms for report in completed) <= \
        reference_fence

    write_report("autobalance_controller",
                 render_autobalance_report(static, controlled))
