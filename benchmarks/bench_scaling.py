"""Benchmark regenerating the Sect. 7 scaling argument (experiment E9).

Two artefacts are produced: the analytic ACID-violation curves (lazy grows
with the number of servers, group-safe shrinks — the paper's closing
argument, illustrated by its Fig. 10 discussion), and a simulation-backed
divergence check showing the mechanism behind the lazy curve.
"""

from __future__ import annotations

from repro.experiments import (analytic_scaling, conflicting_updates_run,
                               render_scaling)

from conftest import write_report

SERVER_COUNTS = (3, 5, 7, 9, 11, 13, 15)


def test_scaling_analysis(benchmark):
    """Sect. 7: violation probability vs. number of servers."""
    points = benchmark(analytic_scaling, SERVER_COUNTS)
    lazy_curve = [point.lazy_violation_probability for point in points]
    group_curve = [point.group_safe_violation_probability for point in points]
    assert all(b >= a for a, b in zip(lazy_curve, lazy_curve[1:]))
    assert all(b <= a for a, b in zip(group_curve, group_curve[1:]))
    assert points[-1].group_safe_wins
    write_report("section7_scaling", render_scaling(points))


def test_lazy_divergence_mechanism(benchmark):
    """The mechanism behind the lazy curve: unhandled concurrent conflicts."""
    lazy = benchmark.pedantic(conflicting_updates_run, args=("1-safe",),
                              kwargs=dict(conflicts=8, seed=5),
                              rounds=1, iterations=1)
    group = conflicting_updates_run("group-safe", conflicts=8, seed=5)
    # Lazy replication accepts every conflicting update without telling any
    # client; the group-based technique aborts one of each conflicting pair
    # and never lets the copies diverge.
    assert lazy.aborted == 0 and lazy.committed == lazy.submitted
    assert group.aborted >= 1
    assert not group.diverged
    write_report("section7_divergence", "\n".join([
        "conflicting concurrent updates (8 pairs submitted on two servers):",
        f"  1-safe (lazy) : committed={lazy.committed} aborted={lazy.aborted} "
        f"divergent items={len(lazy.divergent_items)}",
        f"  group-safe    : committed={group.committed} aborted={group.aborted} "
        f"divergent items={len(group.divergent_items)}",
    ]))
