"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a specific table or figure of the paper; they
probe the modelling decisions behind the Fig. 9 reproduction:

* A1 — synchronous vs. asynchronous disk writes (the entire difference
  between group-1-safe and group-safe replication);
* A2 — network latency sweep: the paper's Sect. 6 conclusion ("transferring
  the responsibility of durability from stable storage to the group is a good
  idea *in a LAN*") only holds while a broadcast is much cheaper than a disk
  write;
* A3 — abort-rate sensitivity to the conflict profile (hotter database);
* A4 — the cost of 2-safety: end-to-end atomic broadcast with delivery
  logging vs. plain group-1-safe replication.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_load_point
from repro.workload import SimulationParameters

POINT_KWARGS = dict(duration_ms=8_000.0, warmup_ms=2_000.0, seed=3)
ABLATION_LOAD = 26.0


def test_group_safe_async_vs_sync_writes(benchmark):
    """A1: the asynchronous-write optimisation is the performance story."""
    group_safe = benchmark.pedantic(
        run_load_point, args=("group-safe", ABLATION_LOAD),
        kwargs=POINT_KWARGS, rounds=1, iterations=1)
    group_one_safe = run_load_point("group-1-safe", ABLATION_LOAD,
                                    **POINT_KWARGS)
    # Removing the asynchrony (group-1-safe keeps everything else identical)
    # must cost at least one average disk write of response time.
    assert group_one_safe.mean_response_time_ms \
        > group_safe.mean_response_time_ms + 8.0


@pytest.mark.parametrize("latency_ms", [0.07, 4.0, 20.0])
def test_network_latency_sweep(benchmark, latency_ms):
    """A2: group-safety pays off only while broadcasting beats disk writes."""
    params = SimulationParameters.paper().with_overrides(
        network_latency=latency_ms)
    group_safe = benchmark.pedantic(
        run_load_point, args=("group-safe", ABLATION_LOAD),
        kwargs=dict(params=params, **POINT_KWARGS), rounds=1, iterations=1)
    lazy = run_load_point("1-safe", ABLATION_LOAD, params=params,
                          **POINT_KWARGS)
    if latency_ms <= 4.0:
        # LAN-like latencies: the paper's conclusion holds.
        assert group_safe.mean_response_time_ms < lazy.mean_response_time_ms
    else:
        # WAN-like latencies: several broadcast steps of 20 ms each put the
        # group-based technique at (at least) a clear disadvantage relative
        # to its LAN behaviour; the advantage over lazy replication shrinks
        # or disappears.
        lan_group_safe = run_load_point("group-safe", ABLATION_LOAD,
                                        **POINT_KWARGS)
        assert group_safe.mean_response_time_ms \
            > lan_group_safe.mean_response_time_ms + 3 * latency_ms


def test_abort_rate_sensitivity_to_database_size(benchmark):
    """A3: certification aborts scale with the conflict probability."""
    cold = benchmark.pedantic(
        run_load_point, args=("group-safe", ABLATION_LOAD),
        kwargs=POINT_KWARGS, rounds=1, iterations=1)
    hot_params = SimulationParameters.paper().with_overrides(item_count=500)
    hot = run_load_point("group-safe", ABLATION_LOAD, params=hot_params,
                         **POINT_KWARGS)
    assert hot.abort_rate > cold.abort_rate
    assert hot.abort_rate > 0.02


def test_two_safe_overhead(benchmark):
    """A4: end-to-end guarantees cost a stable-storage write per delivery."""
    from repro.replication import ReplicatedDatabaseCluster
    from repro.workload import OpenLoopClientPool

    def run(delivery_log_time):
        cluster = ReplicatedDatabaseCluster(
            "2-safe", params=SimulationParameters.paper(), seed=4,
            gcs_delivery_log_time=delivery_log_time)
        cluster.start()
        clients = OpenLoopClientPool(cluster, load_tps=22.0, warmup=2_000.0)
        clients.start()
        cluster.run(until=8_000.0)
        return clients.mean_response_time()

    free_logging = benchmark.pedantic(run, args=(0.0,), rounds=1, iterations=1)
    charged_logging = run(8.0)
    assert charged_logging > free_logging
