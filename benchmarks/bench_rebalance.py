"""Benchmark: live migration of a hot Zipf head under sustained load.

The headline property of the epoch-versioned routing table: with Zipf skew
over range sharding, the hot head of the keyspace saturates partition 0
while the tail partitions idle.  ``rebalance()`` splits the hot shard at
its access-weighted median and migrates the head to the coolest group —
**while the open-loop driver keeps submitting** — and the cluster's
committed throughput recovers.

Acceptance bars (the ISSUE acceptance criteria):

* the migration completes under load (commits keep flowing during it);
* zero lost and zero duplicated commits, verified by the per-key commit
  audit of :func:`repro.experiments.audit_commit_integrity`;
* post-rebalance committed throughput — system-wide *and* on the formerly
  hot shard — beats the static-range baseline of the identically seeded
  run.
"""

from __future__ import annotations

from repro.experiments import (render_rebalance_report,
                               run_rebalance_experiment)
from repro.experiments.rebalance import (DEFAULT_REBALANCE_AT_MS,
                                         DEFAULT_SETTLE_MS)

from conftest import write_report


def both_runs():
    static = run_rebalance_experiment(rebalance=False)
    rebalanced = run_rebalance_experiment(rebalance=True)
    return static, rebalanced


def test_live_rebalance_of_a_hot_zipf_head(benchmark):
    static, rebalanced = benchmark.pedantic(both_runs, rounds=1, iterations=1)

    # Same seed, same workload: the runs are identical until the move.
    assert rebalanced.before_tput == static.before_tput
    assert rebalanced.hot_share_before == static.hot_share_before

    # The migration completed while the driver kept submitting.
    migration = rebalanced.migration
    assert migration is not None and migration.completed
    assert migration.verified
    assert DEFAULT_REBALANCE_AT_MS <= migration.completed_at \
        <= DEFAULT_SETTLE_MS
    assert rebalanced.statistics.during_migration_commits > 0
    assert rebalanced.statistics.epoch_commits.get(migration.epoch, 0) > 0

    # Zero lost / duplicated commits (per-key commit audit), both runs.
    assert static.audit_ok, static.audit_failures
    assert rebalanced.audit_ok, rebalanced.audit_failures

    # Skew repair: post-rebalance committed throughput beats the static
    # baseline decisively — system-wide and on the formerly hot shard
    # (group 0 still serves the warm middle of the range, but freed of the
    # head it stops being the bottleneck).
    assert rebalanced.after_tput > 1.3 * static.after_tput
    hot_after_static = static.after_tput * static.hot_share_after
    hot_after_rebalanced = (rebalanced.after_tput *
                            rebalanced.hot_share_after)
    assert hot_after_rebalanced > 1.3 * hot_after_static

    write_report("rebalance_live_migration",
                 render_rebalance_report(static, rebalanced))
