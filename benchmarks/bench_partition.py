"""Benchmark for the partitioned replication subsystem.

Two artefacts are produced:

* the **partition-scaling curve**: committed throughput and response-time
  percentiles at a fixed offered load as the keyspace is sharded across 1, 2,
  4 and 8 replica groups — the scalability axis the single-group paper never
  explored.  The acceptance check is that 4 partitions sustain a pure
  single-partition workload at measurably higher throughput than 1 partition.
* the **cross-partition cost**: the same 4-partition system with a growing
  fraction of transactions spanning two shards, showing the two-phase-commit
  tax on throughput and latency.
"""

from __future__ import annotations

from repro.experiments import (partition_sweep, render_partition_sweep,
                               run_partition_point)

from conftest import write_report

PARTITION_COUNTS = (1, 2, 4, 8)
LOAD_TPS = 120.0
CROSS_FRACTIONS = (0.0, 0.1, 0.3)


def test_partition_throughput_scaling(benchmark):
    """Sharding past the single broadcast domain: throughput vs. partitions."""
    points = benchmark.pedantic(
        partition_sweep,
        kwargs=dict(partition_counts=PARTITION_COUNTS, load_tps=LOAD_TPS),
        rounds=1, iterations=1)
    throughputs = {point.partition_count: point.achieved_throughput_tps
                   for point in points}
    # The acceptance bar: 4 independent groups beat 1 group decisively on a
    # pure single-partition workload at a load that saturates one group.
    assert throughputs[4] > 1.5 * throughputs[1]
    # And the curve keeps rising through 8 partitions.
    assert throughputs[8] > throughputs[4]
    write_report("partition_scaling", render_partition_sweep(points))


def test_cross_partition_cost(benchmark):
    """The 2PC tax: throughput / latency vs. cross-partition fraction."""
    def sweep():
        return [run_partition_point(partition_count=4, load_tps=LOAD_TPS,
                                    cross_partition_probability=fraction)
                for fraction in CROSS_FRACTIONS]

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pure, _light, heavy = points
    assert pure.statistics.cross.measured_commits == 0
    assert heavy.statistics.cross.measured_commits > 0
    # Cross-partition transactions introduce a failure mode the fast path
    # does not have: the optimistic prepare can be invalidated between the
    # branches' read phases and vote collection.
    assert heavy.statistics.cross.abort_reasons.get(
        "xpartition-validation", 0) > 0
    # And the 2PC tax is paid in *work amplification*, not client latency
    # (branch read phases run in parallel on two delegates): one committed
    # cross-partition transaction costs branch commits on every server of
    # two replica groups plus a forced decision log, so the per-commit local
    # work is strictly higher than in the pure single-partition workload.
    def work_per_commit(point):
        local_work = sum(point.statistics.per_partition_commits.values())
        return local_work / point.statistics.measured_commits
    assert work_per_commit(heavy) > work_per_commit(pure)
    write_report("partition_cross_cost", render_partition_sweep(points))
