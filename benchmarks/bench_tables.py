"""Benchmarks regenerating the paper's Tables 1–4 (experiments E3–E6).

The tables are logical derivations (Tables 1–3) and a configuration listing
(Table 4); the benchmark times their generation and — more importantly —
asserts cell-by-cell equality with the published tables and writes the
rendered tables to ``benchmark_reports/``.
"""

from __future__ import annotations

from repro.core import (DeliveredOn, LoggedOn, SafetyLevel,
                        crash_tolerance_table, group_safety_comparison_table,
                        render_loss_table, render_safety_matrix, safety_matrix)
from repro.experiments import format_mapping
from repro.workload import SimulationParameters

from conftest import write_report


def test_table1_safety_matrix(benchmark):
    """Table 1: the (delivered × logged) safety matrix."""
    matrix = benchmark(safety_matrix)
    assert matrix[(DeliveredOn.ONE, LoggedOn.NONE)] is SafetyLevel.ZERO_SAFE
    assert matrix[(DeliveredOn.ONE, LoggedOn.ONE)] is SafetyLevel.ONE_SAFE
    assert matrix[(DeliveredOn.ONE, LoggedOn.ALL)] is None
    assert matrix[(DeliveredOn.ALL, LoggedOn.NONE)] is SafetyLevel.GROUP_SAFE
    assert matrix[(DeliveredOn.ALL, LoggedOn.ONE)] is SafetyLevel.GROUP_ONE_SAFE
    assert matrix[(DeliveredOn.ALL, LoggedOn.ALL)] is SafetyLevel.TWO_SAFE
    write_report("table1_safety_matrix", render_safety_matrix())


def test_table2_crash_tolerance(benchmark):
    """Table 2: safety property vs. number of tolerated crashes."""
    rows = benchmark(crash_tolerance_table, 9)
    by_label = {row.tolerated_crashes: set(row.levels) for row in rows}
    assert by_label["0 crashes"] == {SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE}
    assert by_label["less than 9 crashes"] == {SafetyLevel.GROUP_SAFE,
                                               SafetyLevel.GROUP_ONE_SAFE}
    assert by_label["9 crashes"] == {SafetyLevel.TWO_SAFE}
    rendering = "\n".join(
        f"{row.tolerated_crashes:>22} : "
        + ", ".join(level.value for level in row.levels)
        for row in rows)
    write_report("table2_crash_tolerance", rendering)


def test_table3_loss_conditions(benchmark):
    """Table 3: group-safety vs group-1-safety under group/delegate failures."""
    cells = benchmark(group_safety_comparison_table)
    expectation = {
        (SafetyLevel.GROUP_SAFE, False, False): False,
        (SafetyLevel.GROUP_SAFE, True, False): True,
        (SafetyLevel.GROUP_SAFE, True, True): True,
        (SafetyLevel.GROUP_ONE_SAFE, False, False): False,
        (SafetyLevel.GROUP_ONE_SAFE, True, False): False,
        (SafetyLevel.GROUP_ONE_SAFE, True, True): True,
    }
    observed = {(cell.level, cell.group_fails, cell.delegate_crashes):
                cell.possible_loss for cell in cells}
    assert observed == expectation
    write_report("table3_loss_conditions", render_loss_table())


def test_table4_simulator_parameters(benchmark):
    """Table 4: the simulator parameter set."""
    table = benchmark(lambda: SimulationParameters.paper().as_table())
    assert table["Number of items in the database"] == 10_000
    assert table["Number of Servers"] == 9
    assert table["Number of Clients per Server"] == 4
    assert table["Disks per Server"] == 2
    assert table["CPUs per Server"] == 2
    assert table["Transaction Length"] == "10 - 20 Operations"
    assert table["Probability that an operation is a write"] == "50%"
    assert table["Buffer hit ratio"] == "20%"
    assert table["Time for a read"] == "4 - 12 ms"
    assert table["Time for a write"] == "4 - 12 ms"
    assert table["CPU Time used for an I/O operation"] == "0.4 ms"
    assert table["Time for a message or a broadcast on the Network"] == "0.07 ms"
    assert table["CPU time for a network operation"] == "0.07 ms"
    write_report("table4_parameters",
                 format_mapping(table, title="Table 4 — simulator parameters"))
