"""Benchmark: committed throughput vs. cross-partition span.

A transaction spanning ``span`` partitions costs one optimistic prepare per
branch, one forced decision log, and ``span`` branch installs — each
replicated on every server of its group.  The local work behind one client
commit therefore grows linearly with the span, which is the fundamental
2PC work-amplification argument against wide transactions (the ROADMAP
"multi-span transactions" item).  This sweep measures it directly on a
4-partition cluster at a fixed offered load and 30 % cross-partition
traffic.
"""

from __future__ import annotations

from repro.experiments import (SPAN_VALUES, render_span_sweep, span_sweep,
                               work_per_commit)

from conftest import write_report

PARTITIONS = 4
LOAD_TPS = 60.0
CROSS_FRACTION = 0.3


def test_span_work_amplification(benchmark):
    """2PC work per commit grows linearly with the span; throughput holds."""
    points = benchmark.pedantic(
        span_sweep,
        kwargs=dict(spans=SPAN_VALUES, partition_count=PARTITIONS,
                    load_tps=LOAD_TPS,
                    cross_partition_probability=CROSS_FRACTION),
        rounds=1, iterations=1)
    by_span = {point.cross_partition_span: point for point in points}
    assert sorted(by_span) == [2, 3, 4]
    # Cross-partition traffic actually flows and commits at every span.
    for point in points:
        assert point.statistics.cross.measured_commits > 0
    # The amplification is monotone in the span...
    amplification = [work_per_commit(by_span[span]) for span in (2, 3, 4)]
    assert amplification[0] < amplification[1] < amplification[2]
    # ...and roughly linear: each extra branch adds about the same local
    # work (second difference well below the first difference).
    step1 = amplification[1] - amplification[0]
    step2 = amplification[2] - amplification[1]
    assert step1 > 0.3 and step2 > 0.3
    assert abs(step2 - step1) < 0.75 * max(step1, step2)
    write_report("partition_span_cost", render_span_sweep(points))
