"""Shared helpers for the benchmark harness.

Every benchmark writes the table / figure it regenerates into
``benchmark_reports/`` next to this directory, so the paper-vs-measured
comparison of EXPERIMENTS.md can be refreshed from the files after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORT_DIR = Path(__file__).parent / "benchmark_reports"


def write_report(name: str, content: str) -> Path:
    """Write ``content`` to ``benchmark_reports/<name>.txt`` and return the path."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path


@pytest.fixture
def report_writer():
    """Fixture handing benchmarks the report writer."""
    return write_report
